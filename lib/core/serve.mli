(** Reproducible serving load test for the batched prediction kernel.

    Drives a seeded synthetic query stream (a pool of on-grid design
    points reused with a configurable key-reuse factor) through the
    scalar reference path, the batched kernel, the raw zero-allocation
    kernel over pre-marshalled buffers, and the batched path fronted by
    the quantized LRU memo — and reports per-point latency, throughput,
    and cache behaviour.  The stream and predicted values are fully
    deterministic for a given [config]; only the timings vary. *)

type config = {
  batch_size : int;
  batches : int;
  distinct_points : int;  (** pool of unique on-grid query points *)
  grid_sample_size : int;  (** grid resolution used when snapping *)
  seed : int;
  cache_capacity : int;
}

val default : config
(** 256-point batches, 256 batches, 512 distinct points, seed 7. *)

type result = {
  config : config;
  predictions : int;  (** batches * batch_size *)
  key_reuse : float;  (** predictions / distinct_points *)
  scalar_ns_per_point : float;
  batch_ns_per_point : float;
  kernel_ns_per_point : float;
      (** raw [Batch_kernel.eval_into] over pre-marshalled buffers *)
  cached_ns_per_point : float;
  predictions_per_sec : float;  (** from the uncached batched path *)
  speedup_vs_scalar : float;
  hit_rate : float;  (** hits / (hits + misses + bypasses) *)
  cache : Memo.stats;
  checksum : float;
      (** sum of all batched predictions; deterministic per config *)
}

val run : ?obs:Archpred_obs.t -> predictor:Predictor.t -> config -> result
(** Run the load test.  Raises [Archpred_obs.Error.Archpred] on a
    degenerate config, or if the cached and uncached paths ever
    disagree bitwise (which would be a kernel or cache bug). *)

val json_of_result : result -> Archpred_obs.Json.t

val json :
  ?extra:(string * Archpred_obs.Json.t) list ->
  result list ->
  Archpred_obs.Json.t
(** Whole-report object: the {!Bench_report} envelope with
    [schema = "archpred-serve-v1"], then a [runs] list of
    {!json_of_result} objects, then any [extra] sections (the bench
    harness appends the daemon load-test and memo-fix records). *)

val write_json :
  ?extra:(string * Archpred_obs.Json.t) list ->
  path:string ->
  result list ->
  unit
