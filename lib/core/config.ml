module Rng = Archpred_stats.Rng
module Obs = Archpred_obs

type t = {
  seed : int;
  rng : Rng.t option;
  sample_size : int;
  trace_length : int;
  domains : int option;
  criterion : Archpred_rbf.Criteria.t;
  p_min_grid : int list;
  alpha_grid : float list;
  lhs_candidates : int;
  obs : Obs.t;
  checkpoint : string option;
  resume : bool;
  task_retries : int;
  task_deadline : float option;
  sim_batch : int;
  stream_refit : bool;
  refit_full_every : int;
  shard_unit : int;
}

(* Table 4 of the paper finds the best leaf size is 1 or 2, and the best
   radius scale 5-12 times the region size; these grids bracket both. *)
let default_p_min_grid = [ 1; 2; 3 ]
let default_alpha_grid = [ 3.; 5.; 7.; 9.; 12. ]

let default =
  {
    seed = 42;
    rng = None;
    sample_size = 30;
    trace_length = 100_000;
    domains = None;
    criterion = Archpred_rbf.Criteria.Aicc;
    p_min_grid = default_p_min_grid;
    alpha_grid = default_alpha_grid;
    lhs_candidates = 100;
    obs = Obs.null;
    checkpoint = None;
    resume = true;
    task_retries = 1;
    task_deadline = None;
    sim_batch = 16;
    stream_refit = false;
    refit_full_every = 0;
    shard_unit = 4;
  }

let with_seed seed t = { t with seed; rng = None }
let with_rng rng t = { t with rng = Some rng }
let with_sample_size sample_size t = { t with sample_size }
let with_trace_length trace_length t = { t with trace_length }
let with_domains domains t = { t with domains = Some domains }
let with_criterion criterion t = { t with criterion }
let with_p_min_grid p_min_grid t = { t with p_min_grid }
let with_alpha_grid alpha_grid t = { t with alpha_grid }
let with_lhs_candidates lhs_candidates t = { t with lhs_candidates }
let with_obs obs t = { t with obs }
let with_checkpoint path t = { t with checkpoint = Some path }
let without_checkpoint t = { t with checkpoint = None }
let with_resume resume t = { t with resume }
let with_task_retries task_retries t = { t with task_retries }
let with_task_deadline d t = { t with task_deadline = Some d }
let with_sim_batch sim_batch t = { t with sim_batch }
let with_stream_refit stream_refit t = { t with stream_refit }
let with_refit_full_every refit_full_every t = { t with refit_full_every }
let with_shard_unit shard_unit t = { t with shard_unit }
let rng_of t = match t.rng with Some rng -> rng | None -> Rng.create t.seed

let validate t =
  if t.sample_size < 1 then
    Obs.Error.invalid_input ~where:"Config" "sample_size < 1";
  if t.trace_length < 1 then
    Obs.Error.invalid_input ~where:"Config" "trace_length < 1";
  if t.lhs_candidates < 1 then
    Obs.Error.invalid_input ~where:"Config" "lhs_candidates < 1";
  if t.p_min_grid = [] then
    Obs.Error.invalid_input ~where:"Config" "empty p_min_grid";
  if t.alpha_grid = [] then
    Obs.Error.invalid_input ~where:"Config" "empty alpha_grid";
  (match t.domains with
  | Some d when d < 1 -> Obs.Error.invalid_input ~where:"Config" "domains < 1"
  | Some _ | None -> ());
  (match t.checkpoint with
  | Some "" -> Obs.Error.invalid_input ~where:"Config" "empty checkpoint path"
  | Some _ | None -> ());
  if t.task_retries < 0 then
    Obs.Error.invalid_input ~where:"Config" "task_retries < 0";
  (match t.task_deadline with
  | Some d when not (d > 0.) ->
      Obs.Error.invalid_input ~where:"Config" "task_deadline <= 0"
  | Some _ | None -> ());
  if t.sim_batch < 1 then
    Obs.Error.invalid_input ~where:"Config" "sim_batch < 1";
  if t.refit_full_every < 0 then
    Obs.Error.invalid_input ~where:"Config" "refit_full_every < 0";
  if t.shard_unit < 1 then
    Obs.Error.invalid_input ~where:"Config" "shard_unit < 1";
  t
