module Sim = Archpred_sim
module Obs = Archpred_obs
module Json = Archpred_obs.Json

type rate = {
  name : string;
  policy : string;
  cpi : float;
  inst_per_sec : float;
}

type speedup = {
  batch : int;
  sequential_s : float;
  batched_s : float;
  speedup : float;
}

type result = {
  trace_length : int;
  n_configs : int;
  rates : rate list;
  speedups : speedup list;
  bit_identical : bool;
}

(* A deterministic spread of configurations covering every replacement
   policy and a range of pipeline/window/cache shapes — the same spread
   the batch bit-identity tests walk. *)
let configs n =
  Array.init n (fun k ->
      let j = 3 + (7 * k) in
      let rob = 16 + (8 * (j mod 9)) in
      Sim.Config.make
        ~cache_policy:Sim.Cache.Policy.all.(j mod 4)
        ~pipe_depth:(7 + (j mod 12))
        ~rob_size:rob
        ~iq_size:(max 1 (rob / 2))
        ~lsq_size:(max 1 (rob / 2))
        ~l2_size:((1 lsl 17) + (65536 * (j mod 8)))
        ~l2_latency:(8 + (j mod 6))
        ~il1_size:(8192 lsl (j mod 3))
        ~dl1_size:(8192 lsl (j mod 3))
        ~dl1_latency:(1 + (j mod 4))
        ())

let now () = Int64.to_float (Obs.now_ns ())

let results_identical (a : Sim.Processor.result) (b : Sim.Processor.result) =
  let feq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  a.Sim.Processor.instructions = b.Sim.Processor.instructions
  && a.Sim.Processor.cycles = b.Sim.Processor.cycles
  && feq a.Sim.Processor.cpi b.Sim.Processor.cpi
  && feq a.Sim.Processor.branch_accuracy b.Sim.Processor.branch_accuracy

let run ?(trace_length = 20_000) ?(n_configs = 16) ?(batches = [ 1; 4; 16 ]) ()
    =
  if trace_length < 1 then
    Obs.Error.invalid_input ~where:"Sim_bench.run" "trace_length < 1";
  if n_configs < 1 then
    Obs.Error.invalid_input ~where:"Sim_bench.run" "n_configs < 1";
  List.iter
    (fun b ->
      if b < 1 || b > n_configs then
        Obs.Error.invalid_input ~where:"Sim_bench.run"
          "batch size outside [1, n_configs]")
    batches;
  let trace =
    Archpred_workloads.Generator.generate ~seed:7
      Archpred_workloads.Spec2000.mcf ~length:trace_length
  in
  let cfgs = configs n_configs in
  let plan = Sim.Batch.plan trace in
  (* Warm-up: touch both paths once so neither pays first-run costs. *)
  ignore (Sim.Processor.run cfgs.(0) trace);
  ignore (Sim.Batch.run_plan plan [| cfgs.(0) |]);
  (* Sequential reference: each config through [Processor.run], timed
     individually — the per-config inst/s rows and the baseline the
     batched engine is compared against. *)
  let seq_times = Array.make n_configs 0. in
  let reference =
    Array.mapi
      (fun i cfg ->
        let t0 = now () in
        let r = Sim.Processor.run cfg trace in
        seq_times.(i) <- (now () -. t0) /. 1e9;
        r)
      cfgs
  in
  let rates =
    List.init n_configs (fun i ->
        {
          name = Printf.sprintf "config_%02d" i;
          policy = Sim.Cache.Policy.to_string cfgs.(i).Sim.Config.cache_policy;
          cpi = reference.(i).Sim.Processor.cpi;
          inst_per_sec = float_of_int trace_length /. seq_times.(i);
        })
  in
  let identical = ref true in
  let speedups =
    List.map
      (fun b ->
        let sub = Array.sub cfgs 0 b in
        let t0 = now () in
        let batched = Sim.Batch.run_plan plan sub in
        let batched_s = (now () -. t0) /. 1e9 in
        Array.iteri
          (fun i r ->
            if not (results_identical r reference.(i)) then identical := false)
          batched;
        let sequential_s =
          Array.fold_left ( +. ) 0. (Array.sub seq_times 0 b)
        in
        { batch = b; sequential_s; batched_s; speedup = sequential_s /. batched_s })
      batches
  in
  {
    trace_length;
    n_configs;
    rates;
    speedups;
    bit_identical = !identical;
  }

let json_of_result r =
  Json.Obj
    [
      ("trace_length", Json.Int r.trace_length);
      ("n_configs", Json.Int r.n_configs);
      ( "rates",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("name", Json.String c.name);
                   ("policy", Json.String c.policy);
                   ("cpi", Json.Float c.cpi);
                   ("inst_per_sec", Json.Float c.inst_per_sec);
                 ])
             r.rates) );
      ( "speedups",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("batch", Json.Int s.batch);
                   ("sequential_s", Json.Float s.sequential_s);
                   ("batched_s", Json.Float s.batched_s);
                   ("speedup", Json.Float s.speedup);
                 ])
             r.speedups) );
      ("bit_identical", Json.Bool r.bit_identical);
    ]

let record ?(path = "BENCH_parallel.json") r =
  (* [preserved] keeps the micro-benchmark section written by the
     Bechamel run; the two writers share BENCH_parallel.json. *)
  Bench_report.write ~path ~schema:"archpred-parallel-v1"
    (Bench_report.preserved ~path [ "results" ]
    @ [ ("sim", json_of_result r) ])
