module Design = Archpred_design

type series = {
  dim1_value : float;
  dim2_values : float array;
  predicted : float array;
  simulated : float array option;
}

let sweep ?simulate ?domains ~predictor ~base ~dim1 ~steps1 ~dim2 ~steps2 () =
  let space = predictor.Predictor.space in
  let grid = Design.Grid.sweep2 space ~base ~dim1 ~steps1 ~dim2 ~steps2 in
  let flat = Array.concat (Array.to_list grid) in
  let simulated_flat =
    Option.map (fun r -> Response.evaluate_many ?domains r flat) simulate
  in
  (* the whole grid in one batched prediction pass *)
  let predicted_flat = Predictor.predict_batch predictor flat in
  Array.mapi
    (fun i row ->
      let p1 = Design.Space.parameter space dim1 in
      let p2 = Design.Space.parameter space dim2 in
      {
        dim1_value = Design.Parameter.decode p1 row.(0).(dim1);
        dim2_values =
          Array.map (fun pt -> Design.Parameter.decode p2 pt.(dim2)) row;
        predicted = Array.sub predicted_flat (i * steps2) steps2;
        simulated =
          Option.map
            (fun s -> Array.sub s (i * steps2) steps2)
            simulated_flat;
      })
    grid
