module Design = Archpred_design
module Config = Archpred_sim.Config

let kb n = n * 1024
let mb n = n * 1024 * 1024

(* Table 1: parameter ranges and levels.  "Low" is the value at normalised
   coordinate 0, which for pipe_depth, L2_lat and dl1_lat is the *worse*
   (numerically larger) setting, exactly as printed in the paper. *)
let parameters =
  let open Design.Parameter in
  [
    make "pipe_depth" ~lo:24. ~hi:7. ~levels:(Fixed 18) ~integer:true;
    make "ROB_size" ~lo:24. ~hi:128. ~levels:Per_sample ~integer:true;
    make "IQ_ratio" ~lo:0.25 ~hi:0.75 ~levels:Per_sample;
    make "LSQ_ratio" ~lo:0.25 ~hi:0.75 ~levels:Per_sample;
    make "L2_size"
      ~lo:(float_of_int (kb 256))
      ~hi:(float_of_int (mb 8))
      ~levels:(Fixed 6) ~transform:Design.Transform.Log ~integer:true;
    make "L2_lat" ~lo:20. ~hi:5. ~levels:(Fixed 16) ~integer:true;
    make "il1_size"
      ~lo:(float_of_int (kb 8))
      ~hi:(float_of_int (kb 64))
      ~levels:(Fixed 4) ~transform:Design.Transform.Log ~integer:true;
    make "dl1_size"
      ~lo:(float_of_int (kb 8))
      ~hi:(float_of_int (kb 64))
      ~levels:(Fixed 4) ~transform:Design.Transform.Log ~integer:true;
    make "dl1_lat" ~lo:4. ~hi:1. ~levels:(Fixed 4) ~integer:true;
  ]

let space = Design.Space.create parameters
let param_names = Array.of_list (List.map (fun (p : Design.Parameter.t) -> p.name) parameters)
let dim = Design.Space.dimension space

(* Table 2: the narrower test box, expressed in natural units and encoded
   into normalised coordinates of the Table 1 space. *)
let test_lo =
  Design.Space.encode space
    [|
      22.; 37.; 0.31; 0.31; float_of_int (kb 256); 18.;
      float_of_int (kb 8); float_of_int (kb 8); 4.;
    |]

let test_hi =
  Design.Space.encode space
    [|
      9.; 115.; 0.69; 0.69; float_of_int (mb 8); 7.;
      float_of_int (kb 64); float_of_int (kb 64); 1.;
    |]

let config_of_values ?cache_policy v =
  let pipe_depth = int_of_float v.(0) in
  let rob_size = int_of_float v.(1) in
  let ratio_size ratio =
    max 4 (min rob_size (int_of_float (Float.round (ratio *. float_of_int rob_size))))
  in
  Config.make ?cache_policy ~pipe_depth ~rob_size
    ~iq_size:(ratio_size v.(2))
    ~lsq_size:(ratio_size v.(3))
    ~l2_size:(int_of_float v.(4))
    ~l2_latency:(int_of_float v.(5))
    ~il1_size:(int_of_float v.(6))
    ~dl1_size:(int_of_float v.(7))
    ~dl1_latency:(int_of_float v.(8))
    ()

let to_config point = config_of_values (Design.Space.decode space point)

let test_points rng ~n =
  Design.Random_design.sample_in_box rng space ~n ~lo:test_lo ~hi:test_hi

(* --- the extended ten-axis space ---------------------------------- *)

(* The paper's nine parameters plus the cache-replacement policy as a
   categorical axis: four levels decode, in the fixed order of
   [Cache.Policy.all], to LRU, Tree-PLRU, QLRU and MRU across the whole
   hierarchy.  The 9-D Table 1 space stays untouched so every seeded
   paper reproduction is unchanged; the extended space is opt-in. *)

module Cache = Archpred_sim.Cache

let policy_parameter =
  Design.Parameter.make "cache_policy" ~lo:0. ~hi:3. ~levels:(Design.Parameter.Fixed 4)
    ~integer:true

let extended_parameters = parameters @ [ policy_parameter ]
let extended_space = Design.Space.create extended_parameters

let extended_param_names =
  Array.of_list
    (List.map (fun (p : Design.Parameter.t) -> p.name) extended_parameters)

let extended_dim = Design.Space.dimension extended_space

let policy_of_level v =
  let i = int_of_float v in
  Cache.Policy.all.(max 0 (min (Array.length Cache.Policy.all - 1) i))

let to_config_extended point =
  let v = Design.Space.decode extended_space point in
  config_of_values ~cache_policy:(policy_of_level v.(9)) v
