(** Saving and loading trained predictors.

    A fitted RBF model is tiny (tens of centers over nine dimensions), so
    it travels as a line-oriented, human-readable text file:

    {v archpred-model 1
       space 9
       param pipe_depth 24 7 18 linear int
       ...
       p_min 1
       alpha 7
       centers 2 9
       center <c_1..c_9> <r_1..r_9> <weight>
       ... v}

    A model trained once from hundreds of simulations can then serve CPI
    queries in other processes (see the CLI's [train --save] /
    [predict]).  Loaded predictors carry no regression tree
    ([Predictor.tree = None]). *)

val save : Predictor.t -> string -> unit
(** [save predictor path] writes the model.  Raises
    [Archpred (Io_error _)] when the file cannot be created. *)

val load : string -> Predictor.t
(** Read a model back.  Raises [Archpred (Parse_error _)] with a
    line-numbered message on a malformed file and [Archpred (Io_error _)]
    when the file cannot be opened. *)

val to_string : Predictor.t -> string

val of_string : string -> Predictor.t
(** Raises [Archpred (Parse_error _)] on malformed input. *)
