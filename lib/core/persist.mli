(** Saving and loading trained predictors.

    A fitted RBF model is tiny (tens of centers over nine dimensions), so
    it travels as a line-oriented, human-readable text file:

    {v archpred-model 2
       space 9
       param pipe_depth 24 7 18 linear int
       ...
       p_min 1
       alpha 7
       centers 2 9
       center <c_1..c_9> <r_1..r_9> <weight>
       ...
       crc 1a2b3c4d v}

    Format version 2 ends with a [crc] trailer — the CRC-32 ({!Crc32})
    of every preceding byte — which {!load}/{!of_string} verify, so a
    torn, truncated, or bit-rotted file is rejected rather than loaded.
    Version-1 files (no trailer) still load.  In both versions the
    [centers N D] header is authoritative: a file whose center-line count
    disagrees with it (duplicate, missing, or trailing lines) raises a
    line-numbered [Parse_error] instead of being silently mis-parsed.

    A model trained once from hundreds of simulations can then serve CPI
    queries in other processes (see the CLI's [train --save] /
    [predict]).  Loaded predictors carry no regression tree
    ([Predictor.tree = None]). *)

val save : Predictor.t -> string -> unit
(** [save predictor path] writes the model atomically: the bytes go to
    [path ^ ".tmp"], are fsynced, and only then renamed over [path] —
    a crash or full disk at any point leaves an existing model at
    [path] untouched.  Raises [Archpred (Io_error _)] when the file
    cannot be created or made durable.  Fault-injection sites
    (for {!Archpred_fault.Fault}): ["io.write"] before the body is
    written, ["persist.rename"] before the rename commits. *)

val load : string -> Predictor.t
(** Read a model back, verifying the version-2 [crc] trailer.  Raises
    [Archpred (Parse_error _)] with a line-numbered message on a
    malformed or corrupt file and [Archpred (Io_error _)] when the file
    cannot be opened. *)

val to_string : Predictor.t -> string
(** Canonical version-2 serialisation, [crc] trailer included.  Equal
    strings mean bit-identical models — the crash-matrix tests compare
    resumed runs against uninterrupted ones with [String.equal] on this
    output. *)

val of_string : string -> Predictor.t
(** Raises [Archpred (Parse_error _)] on malformed input, a checksum
    mismatch, or a center count that disagrees with the header. *)
