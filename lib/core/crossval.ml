module Sampling = Archpred_stats.Sampling
module Tree = Archpred_regtree.Tree
module Rbf = Archpred_rbf

type result = {
  fold_errors : float array;
  mean_pct : float;
  residuals : float array;
}

let k_fold ?(k = 5) ~rng ~train ~points ~responses () =
  let n = Array.length points in
  let reject what = Archpred_obs.Error.invalid_input ~where:"Crossval.k_fold" what in
  if n < k then reject "fewer points than folds";
  if Array.length responses <> n then reject "points/responses mismatch";
  Array.iter (fun y -> if Float.equal y 0. then reject "zero response") responses;
  let order = Sampling.permutation rng n in
  let fold_of = Array.make n 0 in
  Array.iteri (fun rank i -> fold_of.(i) <- rank mod k) order;
  let residuals = Array.make n 0. in
  let fold_errors =
    Array.init k (fun fold ->
        let train_idx =
          Array.of_list
            (List.filter (fun i -> fold_of.(i) <> fold) (List.init n Fun.id))
        in
        let held_out =
          List.filter (fun i -> fold_of.(i) = fold) (List.init n Fun.id)
        in
        let predict =
          train
            ~points:(Array.map (fun i -> points.(i)) train_idx)
            ~responses:(Array.map (fun i -> responses.(i)) train_idx)
        in
        let held = Array.of_list held_out in
        (* one batched prediction per fold instead of a call per point *)
        let preds = predict (Array.map (fun i -> points.(i)) held) in
        if Array.length preds <> Array.length held then
          reject "trainer returned wrong number of predictions";
        let errs =
          Array.mapi
            (fun rank i ->
              let p = preds.(rank) in
              residuals.(i) <- p -. responses.(i);
              100. *. abs_float (p -. responses.(i)) /. abs_float responses.(i))
            held
        in
        Archpred_stats.Descriptive.mean errs)
  in
  {
    fold_errors;
    mean_pct = Archpred_stats.Descriptive.mean fold_errors;
    residuals;
  }

let rbf_trainer ?(p_min = 1) ?(alpha = 7.) ~dim () ~points ~responses =
  let tree = Tree.build ~p_min ~dim ~points ~responses () in
  let candidates = Rbf.Tree_centers.of_tree ~alpha tree in
  let selection =
    Rbf.Selection.select ~tree ~candidates ~points ~responses ()
  in
  let packed = Rbf.Network.pack selection.Rbf.Selection.network in
  fun held_out -> Rbf.Network.eval_batch packed held_out
