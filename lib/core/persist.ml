module Design = Archpred_design
module Network = Archpred_rbf.Network

let magic = "archpred-model"
let version = 1

let levels_to_string = function
  | Design.Parameter.Fixed l -> string_of_int l
  | Design.Parameter.Per_sample -> "S"

let levels_of_string s =
  if s = "S" then Design.Parameter.Per_sample
  else Design.Parameter.Fixed (int_of_string s)

let to_string (p : Predictor.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "%s %d" magic version;
  let params = Design.Space.parameters p.Predictor.space in
  add "space %d" (Array.length params);
  Array.iter
    (fun (q : Design.Parameter.t) ->
      add "param %s %.17g %.17g %s %s %s" q.name q.lo q.hi
        (levels_to_string q.levels)
        (Design.Transform.to_string q.transform)
        (if q.integer then "int" else "float"))
    params;
  add "p_min %d" p.Predictor.p_min;
  add "alpha %.17g" p.Predictor.alpha;
  let centers = p.Predictor.network.Network.centers in
  let weights = p.Predictor.network.Network.weights in
  let dim = Array.length params in
  add "centers %d %d" (Array.length centers) dim;
  Array.iteri
    (fun j (c : Network.center) ->
      let floats xs =
        String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") xs))
      in
      add "center %s %s %.17g" (floats c.Network.c) (floats c.Network.r)
        weights.(j))
    centers;
  Buffer.contents buf

let save p path =
  match open_out path with
  | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_string p))

exception Parse of int * string

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> Array.of_list
  in
  let fail i msg = raise (Parse (i + 1, msg)) in
  let words i =
    if i >= Array.length lines then fail i "unexpected end of file"
    else String.split_on_char ' ' (String.trim lines.(i))
         |> List.filter (fun w -> w <> "")
  in
  let float_of i s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail i ("bad float " ^ s)
  in
  let int_of i s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail i ("bad int " ^ s)
  in
  try
    (match words 0 with
    | [ m; v ] when m = magic ->
        if int_of 0 v <> version then fail 0 "unsupported version"
    | _ -> fail 0 "not an archpred model file");
    let dim =
      match words 1 with
      | [ "space"; d ] -> int_of 1 d
      | _ -> fail 1 "expected: space <dim>"
    in
    let params =
      List.init dim (fun k ->
          let i = 2 + k in
          match words i with
          | [ "param"; name; lo; hi; levels; transform; integer ] ->
              let transform =
                match Design.Transform.of_string transform with
                | Some t -> t
                | None -> fail i ("bad transform " ^ transform)
              in
              Design.Parameter.make name ~lo:(float_of i lo)
                ~hi:(float_of i hi) ~levels:(levels_of_string levels)
                ~transform
                ~integer:(integer = "int")
          | _ -> fail i "expected: param <name> <lo> <hi> <levels> <tr> <int>")
    in
    let space = Design.Space.create params in
    let p_min =
      match words (2 + dim) with
      | [ "p_min"; v ] -> int_of (2 + dim) v
      | _ -> fail (2 + dim) "expected: p_min <int>"
    in
    let alpha =
      match words (3 + dim) with
      | [ "alpha"; v ] -> float_of (3 + dim) v
      | _ -> fail (3 + dim) "expected: alpha <float>"
    in
    let m, cdim =
      match words (4 + dim) with
      | [ "centers"; m; d ] -> (int_of (4 + dim) m, int_of (4 + dim) d)
      | _ -> fail (4 + dim) "expected: centers <m> <dim>"
    in
    if cdim <> dim then fail (4 + dim) "center dimension mismatch";
    let centers = ref [] and weights = ref [] in
    for j = 0 to m - 1 do
      let i = 5 + dim + j in
      match words i with
      | "center" :: rest when List.length rest = (2 * dim) + 1 ->
          let values = Array.of_list (List.map (float_of i) rest) in
          let c = Array.sub values 0 dim in
          let r = Array.sub values dim dim in
          centers := { Network.c; r } :: !centers;
          weights := values.((2 * dim)) :: !weights
      | _ -> fail i "expected: center <c..> <r..> <w>"
    done;
    let network =
      {
        Network.centers = Array.of_list (List.rev !centers);
        weights = Array.of_list (List.rev !weights);
      }
    in
    Array.iter Network.check_center network.Network.centers;
    { Predictor.space; network; tree = None; p_min; alpha }
  with Parse (line, msg) ->
    Archpred_obs.Error.parse_error ~where:"Persist.of_string" ~line msg

let load path =
  match open_in path with
  | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (In_channel.input_all ic))
