module Design = Archpred_design
module Network = Archpred_rbf.Network
module Fault = Archpred_fault.Fault

let magic = "archpred-model"
let version = 2

let levels_to_string = function
  | Design.Parameter.Fixed l -> string_of_int l
  | Design.Parameter.Per_sample -> "S"

let levels_of_string s =
  if s = "S" then Design.Parameter.Per_sample
  else Design.Parameter.Fixed (int_of_string s)

let body_to_string (p : Predictor.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  add "%s %d" magic version;
  let params = Design.Space.parameters p.Predictor.space in
  add "space %d" (Array.length params);
  Array.iter
    (fun (q : Design.Parameter.t) ->
      add "param %s %.17g %.17g %s %s %s" q.name q.lo q.hi
        (levels_to_string q.levels)
        (Design.Transform.to_string q.transform)
        (if q.integer then "int" else "float"))
    params;
  add "p_min %d" p.Predictor.p_min;
  add "alpha %.17g" p.Predictor.alpha;
  let centers = p.Predictor.network.Network.centers in
  let weights = p.Predictor.network.Network.weights in
  let dim = Array.length params in
  add "centers %d %d" (Array.length centers) dim;
  Array.iteri
    (fun j (c : Network.center) ->
      let floats xs =
        String.concat " " (Array.to_list (Array.map (Printf.sprintf "%.17g") xs))
      in
      add "center %s %s %.17g" (floats c.Network.c) (floats c.Network.r)
        weights.(j))
    centers;
  Buffer.contents buf

(* Version 2 closes the file with an integrity trailer over every
   preceding byte; [load] refuses a model whose trailer does not match,
   so a torn or bit-rotted file can never be mistaken for a model. *)
let to_string p =
  let body = body_to_string p in
  body ^ Printf.sprintf "crc %s\n" (Crc32.to_hex (Crc32.string body))

exception Parse of int * string

(* Split the version-2 trailer off the raw text: the body (every byte up
   to and including the newline before the [crc] line), the trailer's
   checksum, and the 1-based line number of the trailer. *)
let split_trailer text =
  let trimmed = String.length text in
  let trimmed =
    let i = ref trimmed in
    while !i > 0 && (text.[!i - 1] = '\n' || text.[!i - 1] = ' ' || text.[!i - 1] = '\r') do
      decr i
    done;
    !i
  in
  let line_start =
    match String.rindex_from_opt text (trimmed - 1) '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  let last = String.sub text line_start (trimmed - line_start) in
  let line_no =
    let n = ref 1 in
    String.iteri (fun i c -> if c = '\n' && i < line_start then incr n) text;
    !n
  in
  match String.split_on_char ' ' (String.trim last) with
  | [ "crc"; hex ] -> Some (String.sub text 0 line_start, hex, line_no)
  | _ -> None

let of_string text =
  let fail i msg = raise (Parse (i + 1, msg)) in
  try
    (* The version decides the framing, so it is read first, from the raw
       first line — an unsupported version must not be reported as a
       checksum problem. *)
    let first_line =
      match String.index_opt text '\n' with
      | Some i -> String.sub text 0 i
      | None -> text
    in
    let file_version =
      match
        String.split_on_char ' ' (String.trim first_line)
        |> List.filter (fun w -> w <> "")
      with
      | [ m; v ] when m = magic -> (
          match int_of_string_opt v with
          | Some v when v = 1 || v = 2 -> v
          | Some _ | None -> fail 0 "unsupported version")
      | _ -> fail 0 "not an archpred model file"
    in
    let body =
      if file_version = 1 then text
      else
        match split_trailer text with
        | None -> fail 0 "version 2 file without crc trailer"
        | Some (body, hex, line_no) ->
            let expect =
              match Crc32.of_hex hex with
              | Some c -> c
              | None -> fail (line_no - 1) ("bad crc trailer " ^ hex)
            in
            if Crc32.string body <> expect then
              fail (line_no - 1) "crc mismatch: model file is corrupt";
            body
    in
    let lines =
      String.split_on_char '\n' body
      |> List.filter (fun l -> String.trim l <> "")
      |> Array.of_list
    in
    let words i =
      if i >= Array.length lines then fail i "unexpected end of file"
      else String.split_on_char ' ' (String.trim lines.(i))
           |> List.filter (fun w -> w <> "")
    in
    let float_of i s =
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail i ("bad float " ^ s)
    in
    let int_of i s =
      match int_of_string_opt s with
      | Some v -> v
      | None -> fail i ("bad int " ^ s)
    in
    let dim =
      match words 1 with
      | [ "space"; d ] -> int_of 1 d
      | _ -> fail 1 "expected: space <dim>"
    in
    let params =
      List.init dim (fun k ->
          let i = 2 + k in
          match words i with
          | [ "param"; name; lo; hi; levels; transform; integer ] ->
              let transform =
                match Design.Transform.of_string transform with
                | Some t -> t
                | None -> fail i ("bad transform " ^ transform)
              in
              Design.Parameter.make name ~lo:(float_of i lo)
                ~hi:(float_of i hi) ~levels:(levels_of_string levels)
                ~transform
                ~integer:(integer = "int")
          | _ -> fail i "expected: param <name> <lo> <hi> <levels> <tr> <int>")
    in
    let space = Design.Space.create params in
    let p_min =
      match words (2 + dim) with
      | [ "p_min"; v ] -> int_of (2 + dim) v
      | _ -> fail (2 + dim) "expected: p_min <int>"
    in
    let alpha =
      match words (3 + dim) with
      | [ "alpha"; v ] -> float_of (3 + dim) v
      | _ -> fail (3 + dim) "expected: alpha <float>"
    in
    let m, cdim =
      match words (4 + dim) with
      | [ "centers"; m; d ] -> (int_of (4 + dim) m, int_of (4 + dim) d)
      | _ -> fail (4 + dim) "expected: centers <m> <dim>"
    in
    if cdim <> dim then fail (4 + dim) "center dimension mismatch";
    let centers = ref [] and weights = ref [] in
    for j = 0 to m - 1 do
      let i = 5 + dim + j in
      match words i with
      | "center" :: rest when List.length rest = (2 * dim) + 1 ->
          let values = Array.of_list (List.map (float_of i) rest) in
          let c = Array.sub values 0 dim in
          let r = Array.sub values dim dim in
          centers := { Network.c; r } :: !centers;
          weights := values.((2 * dim)) :: !weights
      | _ -> fail i "expected: center <c..> <r..> <w>"
    done;
    (* The [centers N D] header is authoritative: any line left over —
       a duplicated center, stray data, a second model pasted on — means
       the counts disagree and the file must be rejected, not silently
       half-read. *)
    let expected_lines = 5 + dim + m in
    if Array.length lines > expected_lines then
      fail expected_lines
        (match words expected_lines with
        | "center" :: _ ->
            Printf.sprintf
              "more center lines than the declared count (centers %d %d)" m dim
        | _ -> "unexpected trailing line after the last center");
    let network =
      {
        Network.centers = Array.of_list (List.rev !centers);
        weights = Array.of_list (List.rev !weights);
      }
    in
    Array.iter Network.check_center network.Network.centers;
    (* [make] packs the network into batch-kernel storage at load time *)
    Predictor.make ~space ~network ~p_min ~alpha ()
  with Parse (line, msg) ->
    Archpred_obs.Error.parse_error ~where:"Persist.of_string" ~line msg

(* Atomic save: the bytes go to a sibling temp file, reach the disk
   (fsync) before the rename, and only then replace [path] in one atomic
   step.  A crash, ENOSPC, or injected fault at any point leaves the
   previous model intact — the destination is never opened for writing.
   Fault sites: ["io.write"] before the body is written,
   ["persist.rename"] after the temp file is durable. *)
let save p path =
  let data = to_string p in
  let tmp = path ^ ".tmp" in
  let committed = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      (match open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp with
      | exception Sys_error msg -> Archpred_obs.Error.io_error ~path:tmp msg
      | oc ->
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () ->
              Fault.point "io.write";
              (try
                 output_string oc data;
                 flush oc
               with Sys_error msg -> Archpred_obs.Error.io_error ~path:tmp msg);
              (try Unix.fsync (Unix.descr_of_out_channel oc)
               with Unix.Unix_error (err, _, _) ->
                 Archpred_obs.Error.io_error ~path:tmp (Unix.error_message err))));
      Fault.point "persist.rename";
      (match Sys.rename tmp path with
      | () -> committed := true
      | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg);
      (* Best-effort durability of the directory entry itself; not all
         filesystems allow fsync on a directory fd. *)
      match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
      | exception Unix.Unix_error _ -> ()
      | fd ->
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ()))

let load path =
  match open_in path with
  | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> of_string (In_channel.input_all ic))
