module Design = Archpred_design
module Rng = Archpred_stats.Rng

type effect = { name : string; dim : int; magnitude : float }

let names predictor =
  Array.map
    (fun (p : Design.Parameter.t) -> p.Design.Parameter.name)
    (Design.Space.parameters predictor.Predictor.space)

let sort_effects effects =
  List.sort (fun a b -> Float.compare b.magnitude a.magnitude) effects

let main_effects ?(steps = 9) predictor =
  let dim = Design.Space.dimension predictor.Predictor.space in
  let names = names predictor in
  let base = Array.make dim 0.5 in
  (* all dim * steps sweep points in one batched evaluation *)
  let queries =
    Array.init (dim * steps) (fun idx ->
        let k = idx / steps and i = idx mod steps in
        let p = Array.copy base in
        p.(k) <- float_of_int i /. float_of_int (steps - 1);
        p)
  in
  let values = Predictor.predict_batch predictor queries in
  List.init dim (fun k ->
      let v = Array.sub values (k * steps) steps in
      let lo = Array.fold_left Float.min v.(0) v in
      let hi = Array.fold_left Float.max v.(0) v in
      { name = names.(k); dim = k; magnitude = hi -. lo })
  |> sort_effects

let total_effects ?(samples = 512) ~rng predictor =
  let dim = Design.Space.dimension predictor.Predictor.space in
  let names = names predictor in
  (* Build the full query set first — base point then its dim one-axis
     perturbations, per sample — drawing from [rng] in exactly the
     order the eval-interleaved loop used to, then evaluate everything
     in one batch and accumulate in the original order. *)
  let stride = dim + 1 in
  let queries = Array.make (samples * stride) [||] in
  for s = 0 to samples - 1 do
    let p = Array.init dim (fun _ -> Rng.unit_float rng) in
    queries.(s * stride) <- p;
    for k = 0 to dim - 1 do
      let q = Array.copy p in
      q.(k) <- Rng.unit_float rng;
      queries.((s * stride) + 1 + k) <- q
    done
  done;
  let values = Predictor.predict_batch predictor queries in
  let acc = Array.make dim 0. in
  for s = 0 to samples - 1 do
    let y = values.(s * stride) in
    for k = 0 to dim - 1 do
      let d = values.((s * stride) + 1 + k) -. y in
      acc.(k) <- acc.(k) +. (d *. d)
    done
  done;
  List.init dim (fun k ->
      {
        name = names.(k);
        dim = k;
        magnitude = sqrt (acc.(k) /. float_of_int samples);
      })
  |> sort_effects

let interaction predictor ~dim1 ~dim2 =
  let dim = Design.Space.dimension predictor.Predictor.space in
  if dim1 = dim2 || dim1 < 0 || dim2 < 0 || dim1 >= dim || dim2 >= dim then
    invalid_arg "Sensitivity.interaction: bad dimensions";
  let corner u1 u2 =
    let p = Array.make dim 0.5 in
    p.(dim1) <- u1;
    p.(dim2) <- u2;
    p
  in
  let v =
    Predictor.predict_batch predictor
      [| corner 1. 1.; corner 1. 0.; corner 0. 1.; corner 0. 0. |]
  in
  abs_float (v.(0) -. v.(1) -. v.(2) +. v.(3))

let top_interactions ?(count = 10) predictor =
  let dim = Design.Space.dimension predictor.Predictor.space in
  let names = names predictor in
  let pairs = ref [] in
  for j = 0 to dim - 1 do
    for k = j + 1 to dim - 1 do
      pairs :=
        (names.(j), names.(k), interaction predictor ~dim1:j ~dim2:k) :: !pairs
    done
  done;
  !pairs
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < count)
