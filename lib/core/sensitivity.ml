module Design = Archpred_design
module Rng = Archpred_stats.Rng

type effect = { name : string; dim : int; magnitude : float }

let names predictor =
  Array.map
    (fun (p : Design.Parameter.t) -> p.Design.Parameter.name)
    (Design.Space.parameters predictor.Predictor.space)

let sort_effects effects =
  List.sort (fun a b -> Float.compare b.magnitude a.magnitude) effects

let main_effects ?(steps = 9) predictor =
  let dim = Design.Space.dimension predictor.Predictor.space in
  let names = names predictor in
  let base = Array.make dim 0.5 in
  List.init dim (fun k ->
      let values =
        Array.init steps (fun i ->
            let p = Array.copy base in
            p.(k) <- float_of_int i /. float_of_int (steps - 1);
            Predictor.predict predictor p)
      in
      let lo = Array.fold_left Float.min values.(0) values in
      let hi = Array.fold_left Float.max values.(0) values in
      { name = names.(k); dim = k; magnitude = hi -. lo })
  |> sort_effects

let total_effects ?(samples = 512) ~rng predictor =
  let dim = Design.Space.dimension predictor.Predictor.space in
  let names = names predictor in
  let acc = Array.make dim 0. in
  for _ = 1 to samples do
    let p = Array.init dim (fun _ -> Rng.unit_float rng) in
    let y = Predictor.predict predictor p in
    for k = 0 to dim - 1 do
      let saved = p.(k) in
      p.(k) <- Rng.unit_float rng;
      let y' = Predictor.predict predictor p in
      p.(k) <- saved;
      let d = y' -. y in
      acc.(k) <- acc.(k) +. (d *. d)
    done
  done;
  List.init dim (fun k ->
      {
        name = names.(k);
        dim = k;
        magnitude = sqrt (acc.(k) /. float_of_int samples);
      })
  |> sort_effects

let interaction predictor ~dim1 ~dim2 =
  let dim = Design.Space.dimension predictor.Predictor.space in
  if dim1 = dim2 || dim1 < 0 || dim2 < 0 || dim1 >= dim || dim2 >= dim then
    invalid_arg "Sensitivity.interaction: bad dimensions";
  let at u1 u2 =
    let p = Array.make dim 0.5 in
    p.(dim1) <- u1;
    p.(dim2) <- u2;
    Predictor.predict predictor p
  in
  abs_float (at 1. 1. -. at 1. 0. -. at 0. 1. +. at 0. 0.)

let top_interactions ?(count = 10) predictor =
  let dim = Design.Space.dimension predictor.Predictor.space in
  let names = names predictor in
  let pairs = ref [] in
  for j = 0 to dim - 1 do
    for k = j + 1 to dim - 1 do
      pairs :=
        (names.(j), names.(k), interaction predictor ~dim1:j ~dim2:k) :: !pairs
    done
  done;
  !pairs
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
  |> List.filteri (fun i _ -> i < count)
