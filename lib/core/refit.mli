(** Streaming incremental refit across a growing sample.

    [Build.build_to_accuracy]'s default procedure redraws the sample and
    refits every tuning-grid cell from scratch at each size step — the
    paper's protocol, kept bit-for-bit as the default.  With
    [Config.stream_refit] the schedule instead grows one nested sample,
    and this module carries the tuning state across steps:

    - At the first step (and at every periodic full rebuild) each
      [p_min x alpha] cell builds its regression tree, derives the
      candidate centers, computes the full design matrix, and retains
      the Gram moments ({!Archpred_rbf.Subset_scorer}).
    - At later steps each new simulation point becomes one rank-1 row
      push per cell ({!Archpred_rbf.Subset_scorer.add_row}) — O(M^2)
      instead of the O(n M^2) moment rebuild — after which the
      tree-ordered selection re-runs against the grown sample with the
      frozen tree and candidate set.

    Rows are pushed strictly in sample-index order, so the moments — and
    therefore the selected model — are identical whatever process or
    domain count delivered the rows: the sharded coordinator and the
    single-process run produce the same bits.

    Observability (on [Config.obs]): the ["build.refit"] span,
    ["refit.rows_full"] (rows folded in by from-scratch builds, per
    cell), ["refit.rows_pushed"] (rows folded in by streamed pushes, per
    cell — the ratio of the two is the measured cost reduction),
    ["refit.crosschecks"] and the ["refit.crosscheck_delta"] gauge
    (streamed-vs-rebuilt criterion gap at each periodic check). *)

type t
(** Tuning state carried across the size steps of one streaming run. *)

val create : Config.t -> t
(** Capture the tuning inputs — criterion, grids, domain count,
    observability handle, and the full-rebuild cadence
    [refit_full_every] ([0] = never rebuild after the first step) — from
    the configuration.  Raises [Archpred (Invalid_input _)] on an empty
    grid or a negative cadence. *)

val fit :
  t ->
  dim:int ->
  points:float array array ->
  responses:float array ->
  Tune.result
(** Fit the tuning grid to the current sample prefix and return the
    winning cell, exactly as [Tune.tune] would shape it.  The first call
    builds every cell from scratch; later calls must pass a sample that
    *extends* the previous one (same rows, new ones appended) and fold
    only the new rows in.  Every [refit_full_every]-th step rebuilds
    from scratch, records the criterion drift, and adopts the rebuilt
    basis.  Raises [Invalid_argument] on a mismatched or shrinking
    sample. *)

val rows : t -> int
(** Sample rows currently folded into every cell's moments. *)

val steps : t -> int
(** Completed {!fit} calls. *)
