(** Design-space search driven by a trained model.

    The paper's motivating use case: once a model predicts CPI accurately,
    "searches for optimal processor design points" can run against the
    model instead of the simulator.  The search combines a broad random
    scan with coordinate-descent refinement; an optional constraint
    predicate restricts the feasible region (e.g. a cost budget over cache
    sizes). *)

type result = {
  point : Archpred_design.Space.point;
  predicted : float;
  evaluations : int;  (** model evaluations spent *)
}

val minimize :
  ?config:Config.t ->
  ?scan:int ->
  ?refine_iters:int ->
  ?constraint_:(Archpred_design.Space.point -> bool) ->
  predictor:Predictor.t ->
  unit ->
  result
(** Find the design point with the lowest predicted response: [scan]
    (default 2000) random feasible points — predicted in one
    {!Predictor.predict_batch} pass over the packed kernel — then
    [refine_iters] (default 50) rounds of per-dimension refinement around
    the incumbent.  The random scan draws from [config]'s generator
    ({!Config.rng_of}); the ["search.minimize"] span and
    ["search.evaluations"] counter go to [config.obs].  Raises
    [Archpred (Infeasible _)] if no scanned point satisfies the
    constraint. *)
