(** The library's unified error type, re-exported from
    [Archpred_obs.Error] (it lives at the bottom of the dependency graph
    so every layer can raise it).

    Entry points across [lib/core] and [lib/design] raise
    [Archpred of t] for invalid requests instead of ad-hoc [Failure] /
    [Invalid_argument] payloads; executables catch it once, print
    {!to_string} and exit with {!exit_code}. *)

include module type of struct
  include Archpred_obs.Error
end
