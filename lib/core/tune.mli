(** Method-parameter tuning (section 2.6 of the paper).

    The regression-tree/RBF construction has two method parameters: the
    leaf size [p_min] and the radius scale [alpha] (eq. 8).  "We determined
    optimal p_min and alpha for each benchmark by choosing the values which
    resulted in the lowest AICc."  This module grid-searches both. *)

type result = {
  p_min : int;
  alpha : float;
  criterion : float;  (** best criterion value found *)
  tree : Archpred_regtree.Tree.t;
  selection : Archpred_rbf.Selection.result;
}

val default_p_min_grid : int list
(** [\[1; 2; 3\]] — Table 4 finds the best value is 1 or 2. *)

val default_alpha_grid : float list
(** [\[3.; 5.; 7.; 9.; 12.\]] — the paper reports best radii of 5–12 times
    the region size. *)

val tune :
  ?criterion:Archpred_rbf.Criteria.t ->
  ?p_min_grid:int list ->
  ?alpha_grid:float list ->
  ?domains:int ->
  dim:int ->
  points:float array array ->
  responses:float array ->
  unit ->
  result
(** Build a tree per [p_min] (once, shared by its alpha row), fan the
    [p_min] x [alpha] cells over the domain pool, and return the
    combination minimising the criterion.  Ties keep the earliest grid
    cell, so the result is identical for every [domains] value. *)
