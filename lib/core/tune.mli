(** Method-parameter tuning (section 2.6 of the paper).

    The regression-tree/RBF construction has two method parameters: the
    leaf size [p_min] and the radius scale [alpha] (eq. 8).  "We determined
    optimal p_min and alpha for each benchmark by choosing the values which
    resulted in the lowest AICc."  This module grid-searches both. *)

type result = {
  p_min : int;
  alpha : float;
  criterion : float;  (** best criterion value found *)
  tree : Archpred_regtree.Tree.t;
  selection : Archpred_rbf.Selection.result;
}

val default_p_min_grid : int list
(** [Config.default_p_min_grid]. *)

val default_alpha_grid : float list
(** [Config.default_alpha_grid]. *)

val cells : Config.t -> (int * float) array
(** The tuning grid in canonical cell order: [p_min] outer, [alpha] inner
    — the serial iteration order.  The arg-min over cells keeps the
    earliest cell on ties, so every consumer of the grid (this module's
    walk, the streaming refit, the sharded tune stage) must enumerate
    cells in exactly this order to reproduce the same winner.  Raises
    [Archpred (Invalid_input _)] on an empty grid. *)

val eval_cell :
  ?obs:Archpred_obs.t ->
  criterion:Archpred_rbf.Criteria.t ->
  tree:Archpred_regtree.Tree.t ->
  points:float array array ->
  responses:float array ->
  alpha:float ->
  unit ->
  Archpred_rbf.Selection.result
(** Evaluate one grid cell against a tree already built for its [p_min]:
    derive the candidate centers at [alpha] and run the tree-ordered
    selection.  Deterministic in its inputs — {!tune} and the sharded
    tune stage both call this, which is what makes a sharded grid walk
    bit-identical to the serial one. *)

val tune :
  ?config:Config.t ->
  dim:int ->
  points:float array array ->
  responses:float array ->
  unit ->
  result
(** Build a tree per [p_min] (once, shared by its alpha row), fan the
    [p_min] x [alpha] cells over the domain pool, and return the
    combination minimising the criterion.  Ties keep the earliest grid
    cell, so the result is identical for every domain count.  Reads
    [criterion], the grids, [domains] and [obs] from [config] (default
    {!Config.default}); records the ["build.tune"] span and the
    ["tune.cells"] counter, and threads [obs] into tree growth and center
    selection.  Raises [Archpred (Invalid_input _)] on an empty grid. *)
