(** Crash-safe simulation checkpoint journal.

    Cycle-accurate simulation is the expensive step of model construction
    — the paper's whole premise is that only a few hundred runs are
    affordable — so a crash inside [Build.train] must not discard the
    simulations that already finished.  The journal is an append-only
    JSON-lines sidecar: every completed (design point, response) pair is
    streamed to it as soon as the simulation task returns, and a
    restarted run replays the journal, keeps every intact record, and
    re-simulates only the missing points.

    {2 Format}

    Every line is one CRC-framed record:

    {v <crc32-hex> <payload-json>\n v}

    where the 8-hex-digit checksum is the CRC-32 ({!Crc32}) of the
    payload bytes.  Line 1 is the header, identifying the run the
    journal belongs to:

    {v {"type":"header","format":"archpred-checkpoint","version":1,
        "n":30,"dim":9,"seed":42,"response":"mcf:cpi"} v}

    Subsequent lines are records; coordinates and responses are
    hexadecimal float literals, so replay is bit-exact:

    {v {"type":"record","index":3,"point":["0x1.8p-1",...],"value":"0x1.2ap+0"} v}

    A torn tail — the line a crash cut short, detected by a missing
    newline, a checksum mismatch, or unparseable JSON — is dropped and
    truncated away on resume; everything before it is kept.  A complete
    but *mismatching* header (different [n], [dim], [seed] or response
    name) raises [Parse_error]: silently mixing journals from different
    campaigns would corrupt the model.

    Appends are mutex-guarded (simulation tasks run on worker domains),
    flushed per record, and fsynced every [sync_every] records and on
    {!sync}/{!close} — batch-boundary durability, so journaling stays
    off the training hot path. *)

type record = { index : int; point : float array; value : float }
(** One completed simulation: the sample index, the normalised design
    point, and its response. *)

type t
(** An open journal writer. *)

val start :
  path:string ->
  n:int ->
  dim:int ->
  seed:int ->
  response:string ->
  resume:bool ->
  ?sync_every:int ->
  unit ->
  t * record list
(** [start ~path ~n ~dim ~seed ~response ~resume ()] opens the journal
    for the identified run and returns the writer plus the replayed
    records (in journal order, duplicates dropped first-wins).

    With [resume = true] and an existing journal at [path]: the header
    must match ([Parse_error] otherwise), valid records are replayed,
    the torn tail (if any) is truncated off, and the file is reopened
    for append.  A file whose very first line is torn is treated as
    empty and restarted.  With [resume = false], or no existing file,
    a fresh journal (header only, fsynced) is created and no records
    are replayed.

    [sync_every] (default 32) is the fsync batch size.  Raises
    [Archpred (Io_error _)] on filesystem errors and
    [Archpred (Parse_error _)] on a mismatching or out-of-range
    journal. *)

val append : t -> record -> unit
(** Append one record (domain-safe) and flush it to the OS.  Fsyncs when
    the batch fills.  Fault sites: ["checkpoint.append"] before the
    write, ["checkpoint.sync"] inside a batch-boundary fsync. *)

val sync : t -> unit
(** Force a batch boundary: flush and fsync whatever is buffered. *)

val close : t -> unit
(** {!sync} then close the file.  Idempotent. *)

val close_noerr : t -> unit
(** Close without syncing and without raising — the abandon path after
    a failure, when the journal's valid prefix is already on disk and
    the current batch is forfeit (exactly what a real crash forfeits). *)

val scan : path:string -> record list
(** Replay a journal read-only: the valid records of the intact prefix,
    duplicates dropped, torn tail ignored, no truncation, any header
    accepted.  For tests and inspection. *)

(** {2 Framing primitives}

    The CRC-framed-line format is also the substrate of the sharded-search
    result journals ({!Archpred_shard}); these helpers are the single
    implementation of the frame so the two journal families cannot
    drift. *)

val frame : string -> string
(** [frame payload] is the journal line for [payload]:
    ["<crc32-hex> <payload>\n"]. *)

val unframe : string -> Archpred_obs.Json.t option
(** Parse one newline-stripped journal line: the payload JSON if the
    checksum verifies and the payload parses, [None] for a torn or
    corrupted line. *)

val float_to_hex_string : float -> string
(** ["%h"] rendering — round-trips every bit pattern. *)

val float_of_hex_string : string -> float option
(** Inverse of {!float_to_hex_string} (accepts any [float_of_string]
    literal). *)
