(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum framing both
    the checkpoint journal records and the model file's integrity
    trailer.  Pure OCaml, table-driven; no external dependency. *)

val string : string -> int32
(** CRC-32 of a whole string. *)

val update : int32 -> string -> pos:int -> len:int -> int32
(** Fold more bytes into a running checksum ([string s] is
    [update 0l s ~pos:0 ~len:(String.length s)]). *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex, 8 characters. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
