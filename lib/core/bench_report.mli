(** The shared envelope of every [BENCH_*.json] report.

    All machine-readable benchmark reports (the serving load test, the
    micro-benchmark record, the checkpoint-overhead record, the batched
    simulation record) carry the same leading fields — a schema tag, the
    envelope schema version, the default domain count, the [git describe]
    stamp and the SIMD level the prediction kernel dispatched to — so
    regression tooling can treat them uniformly.  This module is the one
    writer of that envelope. *)

val schema_version : int
(** Version of the envelope itself (the leading fields), not of any
    report's payload; currently [1]. *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] outside a work
    tree. *)

val metadata : unit -> (string * Archpred_obs.Json.t) list
(** The environment stamp: [domains], [git_describe] and [simd]. *)

val envelope : schema:string -> (string * Archpred_obs.Json.t) list
(** [schema] and [schema_version] followed by {!metadata}. *)

val obj :
  schema:string -> (string * Archpred_obs.Json.t) list -> Archpred_obs.Json.t
(** A whole report: the envelope followed by the payload [fields]. *)

val preserved :
  path:string -> string list -> (string * Archpred_obs.Json.t) list
(** The members of [keys] present in the JSON report at [path], in key
    order; [[]] when the file is missing or unparseable.  Lets two
    writers share one report file (e.g. the micro results and the
    simulation section of [BENCH_parallel.json]) without clobbering each
    other's sections. *)

val write :
  path:string -> schema:string -> (string * Archpred_obs.Json.t) list -> unit
(** Serialise {!obj} to [path] with a trailing newline. *)
