(** Model-construction configuration.

    One record gathers everything the training pipeline used to take as
    spread optional arguments: reproducibility (seed / explicit
    generator), sample size, simulated trace length, domain count, the
    tuning grids, and the observability handle.  Build a value by piping
    setters from {!default}:

    {[
      Config.default
      |> Config.with_seed 7
      |> Config.with_sample_size 60
      |> Config.with_obs obs
    ]}

    The record is immutable; every [with_*] returns an updated copy, so a
    base configuration can be shared and specialised per run. *)

type t = {
  seed : int;  (** root seed; ignored when [rng] is set *)
  rng : Archpred_stats.Rng.t option;
      (** explicit (stateful) generator; lets several calls share one
          stream, e.g. across the sizes of [build_to_accuracy] *)
  sample_size : int;  (** training sample size [n] *)
  trace_length : int;  (** instructions per simulated trace *)
  domains : int option;  (** worker domains; [None] = library default *)
  criterion : Archpred_rbf.Criteria.t;  (** model-selection criterion *)
  p_min_grid : int list;  (** tuning grid for the leaf size *)
  alpha_grid : float list;  (** tuning grid for the radius scale *)
  lhs_candidates : int;  (** latin hypercube candidates scored *)
  obs : Archpred_obs.t;  (** observability handle; {!Archpred_obs.null} off *)
  checkpoint : string option;
      (** journal each completed simulation to this file ({!Checkpoint});
          a restarted run replays it and re-simulates only the missing
          design points *)
  resume : bool;
      (** with [checkpoint] set: replay an existing journal (default)
          instead of overwriting it with a fresh one *)
  task_retries : int;
      (** per-simulation-task retry budget in the fallible stages
          (default 1); deterministic, so the set of permanently failing
          points is independent of the domain count *)
  task_deadline : float option;
      (** wall-clock seconds a simulation task may take before the
          attempt is failed with [Parallel.Deadline_exceeded];
          [None] = unlimited *)
  sim_batch : int;
      (** design points simulated per {!Archpred_sim.Batch} fan-out when
          the response carries a batched evaluator (default 16); [1]
          forces the pointwise reference path *)
  stream_refit : bool;
      (** [build_to_accuracy] only: grow one nested sample across the size
          schedule and update the tuning-grid Gram moments by rank-1 row
          pushes ({!Refit}) as new simulation points arrive, instead of
          redrawing the sample and refitting every cell from scratch at
          each size step.  Off (the default) preserves the paper's
          independent-sample procedure bit for bit. *)
  refit_full_every : int;
      (** with [stream_refit]: rebuild the tree basis from scratch (and
          cross-check the streamed criterion against the full refit) every
          this many size steps; [0] (default) never rebuilds after the
          first step *)
  shard_unit : int;
      (** design points (or grid cells, or LHS candidates) per claimable
          work unit when the run is sharded across worker processes
          ({!Archpred_shard}); both coordinator and workers derive the
          same partition from this value (default 4) *)
}

val default : t
(** Seed 42, 30-point samples, 100k-instruction traces, library-default
    domains, AICc, the paper's tuning grids, 100 LHS candidates, and
    observability off. *)

val default_p_min_grid : int list
(** [[1; 2; 3]] — Table 4 finds the best leaf size is 1 or 2. *)

val default_alpha_grid : float list
(** [[3.; 5.; 7.; 9.; 12.]] — best radii reported are 5-12x region size. *)

val with_seed : int -> t -> t
(** Also clears any explicit [rng], so the seed takes effect. *)

val with_rng : Archpred_stats.Rng.t -> t -> t
val with_sample_size : int -> t -> t
val with_trace_length : int -> t -> t
val with_domains : int -> t -> t
val with_criterion : Archpred_rbf.Criteria.t -> t -> t
val with_p_min_grid : int list -> t -> t
val with_alpha_grid : float list -> t -> t
val with_lhs_candidates : int -> t -> t
val with_obs : Archpred_obs.t -> t -> t

val with_checkpoint : string -> t -> t
(** Journal completed simulations to this path; see {!Checkpoint} for
    the format and {!Build.train} for the resume semantics. *)

val without_checkpoint : t -> t

val with_resume : bool -> t -> t
(** Whether an existing journal at the checkpoint path is replayed
    ([true], the default) or overwritten ([false]). *)

val with_task_retries : int -> t -> t
val with_task_deadline : float -> t -> t

val with_sim_batch : int -> t -> t
(** Batch size for simulator-backed responses in {!Build.train}'s
    simulation stage; bit-identical to the pointwise path at any value. *)

val with_stream_refit : bool -> t -> t
(** Streaming incremental refit across [build_to_accuracy] size steps;
    see {!t.stream_refit}. *)

val with_refit_full_every : int -> t -> t
(** Full-refit (basis rebuild + cross-check) cadence under
    [stream_refit]; [0] disables. *)

val with_shard_unit : int -> t -> t
(** Work-unit granularity of the sharded search partition. *)

val rng_of : t -> Archpred_stats.Rng.t
(** The explicit generator when set, otherwise a fresh one from [seed].
    Note the result is stateful: call once per logical stream. *)

val validate : t -> t
(** Returns the configuration unchanged, or raises
    [Archpred (Invalid_input _)] naming the offending field. *)
