(** Model-construction configuration.

    One record gathers everything the training pipeline used to take as
    spread optional arguments: reproducibility (seed / explicit
    generator), sample size, simulated trace length, domain count, the
    tuning grids, and the observability handle.  Build a value by piping
    setters from {!default}:

    {[
      Config.default
      |> Config.with_seed 7
      |> Config.with_sample_size 60
      |> Config.with_obs obs
    ]}

    The record is immutable; every [with_*] returns an updated copy, so a
    base configuration can be shared and specialised per run. *)

type t = {
  seed : int;  (** root seed; ignored when [rng] is set *)
  rng : Archpred_stats.Rng.t option;
      (** explicit (stateful) generator; lets several calls share one
          stream, e.g. across the sizes of [build_to_accuracy] *)
  sample_size : int;  (** training sample size [n] *)
  trace_length : int;  (** instructions per simulated trace *)
  domains : int option;  (** worker domains; [None] = library default *)
  criterion : Archpred_rbf.Criteria.t;  (** model-selection criterion *)
  p_min_grid : int list;  (** tuning grid for the leaf size *)
  alpha_grid : float list;  (** tuning grid for the radius scale *)
  lhs_candidates : int;  (** latin hypercube candidates scored *)
  obs : Archpred_obs.t;  (** observability handle; {!Archpred_obs.null} off *)
}

val default : t
(** Seed 42, 30-point samples, 100k-instruction traces, library-default
    domains, AICc, the paper's tuning grids, 100 LHS candidates, and
    observability off. *)

val default_p_min_grid : int list
(** [[1; 2; 3]] — Table 4 finds the best leaf size is 1 or 2. *)

val default_alpha_grid : float list
(** [[3.; 5.; 7.; 9.; 12.]] — best radii reported are 5-12x region size. *)

val with_seed : int -> t -> t
(** Also clears any explicit [rng], so the seed takes effect. *)

val with_rng : Archpred_stats.Rng.t -> t -> t
val with_sample_size : int -> t -> t
val with_trace_length : int -> t -> t
val with_domains : int -> t -> t
val with_criterion : Archpred_rbf.Criteria.t -> t -> t
val with_p_min_grid : int list -> t -> t
val with_alpha_grid : float list -> t -> t
val with_lhs_candidates : int -> t -> t
val with_obs : Archpred_obs.t -> t -> t

val rng_of : t -> Archpred_stats.Rng.t
(** The explicit generator when set, otherwise a fresh one from [seed].
    Note the result is stateful: call once per logical stream. *)

val validate : t -> t
(** Returns the configuration unchanged, or raises
    [Archpred (Invalid_input _)] naming the offending field. *)
