include Archpred_obs.Error
