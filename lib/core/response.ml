module Space = Archpred_design.Space
module Parallel = Archpred_stats.Parallel
module Sim = Archpred_sim

type t = {
  name : string;
  eval : Space.point -> float;
  eval_many : (?domains:int -> Space.point array -> float array) option;
}

let make ?eval_many name eval = { name; eval; eval_many }

(* Memo key: the exact bit pattern of the coordinates. *)
let key_of_point (p : Space.point) =
  Array.fold_left
    (fun acc x -> (acc * 1000003) lxor Int64.to_int (Int64.bits_of_float x))
    0 p

(* The cache is shared across domains during [evaluate_many]; a mutex
   guards table accesses.  Concurrent misses of the same point may simulate
   twice — harmless, since simulation is deterministic. *)
let memoized ?many name f =
  let cache : (int * Space.point, float) Hashtbl.t = Hashtbl.create 256 in
  let lock = Mutex.create () in
  let with_lock g =
    Mutex.lock lock;
    let v = g () in
    Mutex.unlock lock;
    v
  in
  let eval p =
    let k = (key_of_point p, p) in
    match with_lock (fun () -> Hashtbl.find_opt cache k) with
    | Some v -> v
    | None ->
        let v = f p in
        with_lock (fun () -> Hashtbl.replace cache k v);
        v
  in
  (* Batched evaluation: answer hits from the memo, run the misses as one
     batch (duplicates within a batch evaluate individually — redundant
     but harmless, evaluation is deterministic), then fill the table. *)
  let eval_many ?domains ps =
    let out = Array.make (Array.length ps) 0. in
    let misses = ref [] in
    Array.iteri
      (fun i p ->
        let k = (key_of_point p, p) in
        match with_lock (fun () -> Hashtbl.find_opt cache k) with
        | Some v -> out.(i) <- v
        | None -> misses := i :: !misses)
      ps;
    (match Array.of_list (List.rev !misses) with
    | [||] -> ()
    | idx ->
        let pts = Array.map (fun i -> ps.(i)) idx in
        let vals =
          match many with
          | Some g -> g ?domains pts
          | None -> Parallel.map ?domains f pts
        in
        Array.iteri
          (fun j i ->
            let p = ps.(i) in
            with_lock (fun () ->
                Hashtbl.replace cache (key_of_point p, p) vals.(j));
            out.(i) <- vals.(j))
          idx);
    out
  in
  { name; eval; eval_many = Some eval_many }

type metric = Cpi | Energy_per_instruction | Energy_delay_product

let metric_to_string = function
  | Cpi -> "cpi"
  | Energy_per_instruction -> "epi"
  | Energy_delay_product -> "edp"

let simulator_metric ?(obs = Archpred_obs.null) ?(trace_length = 100_000)
    ?(seed = 42) ?(to_config = Paper_space.to_config) ~metric
    (profile : Archpred_workloads.Profile.t) =
  let trace =
    Archpred_workloads.Generator.generate ~seed profile ~length:trace_length
  in
  (* The decoded streams are shared by every simulation of this response;
     built on first use so responses that never simulate stay free. *)
  let plan = lazy (Sim.Batch.plan trace) in
  let of_result cfg (result : Sim.Processor.result) =
    match metric with
    | Cpi -> result.Sim.Processor.cpi
    | Energy_per_instruction ->
        (Sim.Power.estimate cfg result).Sim.Power.energy_per_instruction
    | Energy_delay_product ->
        (Sim.Power.estimate cfg result).Sim.Power.energy_delay_product
  in
  let raw p =
    (* Counted on cache misses only — memoised hits re-run nothing.  This
       runs on whichever domain evaluates the point; the obs counters are
       per-domain buffers, so no synchronisation happens here. *)
    Archpred_obs.incr obs "sim.runs";
    Archpred_obs.count obs "sim.instructions" trace_length;
    let cfg = to_config p in
    of_result cfg (Sim.Processor.run cfg trace)
  in
  (* The batched path decodes the trace once and fans the configs out;
     [Sim.Batch] is bit-identical to [Processor.run], so memoised values
     are the same whichever path computed them. *)
  let raw_many ?domains ps =
    Archpred_obs.count obs "sim.runs" (Array.length ps);
    Archpred_obs.count obs "sim.instructions" (trace_length * Array.length ps);
    let configs = Array.map to_config ps in
    let results = Sim.Batch.run_plan ?domains (Lazy.force plan) configs in
    Array.map2 of_result configs results
  in
  memoized ~many:raw_many (profile.name ^ ":" ^ metric_to_string metric) raw

let simulator ?obs ?trace_length ?seed ?to_config profile =
  simulator_metric ?obs ?trace_length ?seed ?to_config ~metric:Cpi profile

let evaluate_many ?domains t points =
  match t.eval_many with
  | Some f -> f ?domains points
  | None -> Parallel.map ?domains t.eval points

let synthetic_smooth ~dim =
  make "synthetic-smooth" (fun x ->
      if Array.length x <> dim then invalid_arg "synthetic_smooth: arity";
      let a = x.(0) and b = if dim > 1 then x.(1) else 0.5 in
      let c = if dim > 2 then x.(2) else 0.5 in
      1.
      +. exp (-2. *. a)
      +. (0.8 *. b *. b)
      +. (0.5 *. sin (3. *. c))
      +. (0.6 *. a *. b))

let synthetic_cliff ~dim =
  make "synthetic-cliff" (fun x ->
      if Array.length x <> dim then invalid_arg "synthetic_cliff: arity";
      let base = 1. +. (0.3 *. x.(min 1 (dim - 1))) in
      if x.(0) < 0.35 then base +. 2.5 else base)
