module Space = Archpred_design.Space
module Parallel = Archpred_stats.Parallel

type t = { name : string; eval : Space.point -> float }

(* Memo key: the exact bit pattern of the coordinates. *)
let key_of_point (p : Space.point) =
  Array.fold_left
    (fun acc x -> (acc * 1000003) lxor Int64.to_int (Int64.bits_of_float x))
    0 p

(* The cache is shared across domains during [evaluate_many]; a mutex
   guards table accesses.  Concurrent misses of the same point may simulate
   twice — harmless, since simulation is deterministic. *)
let memoized name f =
  let cache : (int * Space.point, float) Hashtbl.t = Hashtbl.create 256 in
  let lock = Mutex.create () in
  let with_lock g =
    Mutex.lock lock;
    let v = g () in
    Mutex.unlock lock;
    v
  in
  let eval p =
    let k = (key_of_point p, p) in
    match with_lock (fun () -> Hashtbl.find_opt cache k) with
    | Some v -> v
    | None ->
        let v = f p in
        with_lock (fun () -> Hashtbl.replace cache k v);
        v
  in
  { name; eval }

type metric = Cpi | Energy_per_instruction | Energy_delay_product

let metric_to_string = function
  | Cpi -> "cpi"
  | Energy_per_instruction -> "epi"
  | Energy_delay_product -> "edp"

let simulator_metric ?(obs = Archpred_obs.null) ?(trace_length = 100_000)
    ?(seed = 42) ~metric (profile : Archpred_workloads.Profile.t) =
  let trace =
    Archpred_workloads.Generator.generate ~seed profile ~length:trace_length
  in
  let raw p =
    (* Counted on cache misses only — memoised hits re-run nothing.  This
       runs on whichever domain evaluates the point; the obs counters are
       per-domain buffers, so no synchronisation happens here. *)
    Archpred_obs.incr obs "sim.runs";
    Archpred_obs.count obs "sim.instructions" trace_length;
    let result = Archpred_sim.Processor.run (Paper_space.to_config p) trace in
    match metric with
    | Cpi -> result.Archpred_sim.Processor.cpi
    | Energy_per_instruction ->
        (Archpred_sim.Power.estimate (Paper_space.to_config p) result)
          .Archpred_sim.Power.energy_per_instruction
    | Energy_delay_product ->
        (Archpred_sim.Power.estimate (Paper_space.to_config p) result)
          .Archpred_sim.Power.energy_delay_product
  in
  memoized (profile.name ^ ":" ^ metric_to_string metric) raw

let simulator ?obs ?trace_length ?seed profile =
  simulator_metric ?obs ?trace_length ?seed ~metric:Cpi profile

let evaluate_many ?domains t points = Parallel.map ?domains t.eval points

let synthetic_smooth ~dim =
  {
    name = "synthetic-smooth";
    eval =
      (fun x ->
        if Array.length x <> dim then invalid_arg "synthetic_smooth: arity";
        let a = x.(0) and b = if dim > 1 then x.(1) else 0.5 in
        let c = if dim > 2 then x.(2) else 0.5 in
        1.
        +. exp (-2. *. a)
        +. (0.8 *. b *. b)
        +. (0.5 *. sin (3. *. c))
        +. (0.6 *. a *. b));
  }

let synthetic_cliff ~dim =
  {
    name = "synthetic-cliff";
    eval =
      (fun x ->
        if Array.length x <> dim then invalid_arg "synthetic_cliff: arity";
        let base = 1. +. (0.3 *. x.(min 1 (dim - 1))) in
        if x.(0) < 0.35 then base +. 2.5 else base);
  }
