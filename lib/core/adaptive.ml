module Design = Archpred_design
module Stats = Archpred_stats

type step = { sample_size : int; cv_error_pct : float }

type result = {
  trained : Build.trained;
  steps : step list;
  total_simulations : int;
}

let distance2 a b =
  let acc = ref 0. in
  for k = 0 to Array.length a - 1 do
    let d = a.(k) -. b.(k) in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Acquisition: how badly do we want to simulate candidate [c]?
   High when the model's cross-validated residuals near [c] are large
   (local untrustworthiness) and when [c] is far from every simulated
   point (novelty). *)
let acquisition ~points ~residuals c =
  let n = Array.length points in
  let nearest = ref infinity and second = ref infinity in
  let nearest_idx = ref 0 in
  for i = 0 to n - 1 do
    let d = distance2 c points.(i) in
    if d < !nearest then begin
      second := !nearest;
      nearest := d;
      nearest_idx := i
    end
    else if d < !second then second := d
  done;
  let local_residual = abs_float residuals.(!nearest_idx) in
  sqrt !nearest *. (0.05 +. local_residual)

let run ?(initial = 30) ?(batch = 15) ?(rounds = 4) ?(pool = 500) ~rng ~space
    ~response () =
  if initial < 10 then
    Archpred_obs.Error.invalid_input ~where:"Adaptive.run" "initial < 10";
  if batch < 1 || rounds < 0 || pool < batch then
    Archpred_obs.Error.invalid_input ~where:"Adaptive.run"
      "bad batch/rounds/pool";
  let dim = Design.Space.dimension space in
  let plan = Design.Optimize.best_lhs ~candidates:50 rng space ~n:initial in
  let points = ref (Array.copy plan.Design.Optimize.points) in
  let responses = ref (Response.evaluate_many response !points) in
  let steps = ref [] in
  let cv_of () =
    let cv =
      Crossval.k_fold ~k:5 ~rng:(Stats.Rng.split rng)
        ~train:(fun ~points ~responses held ->
          (Crossval.rbf_trainer ~dim ()) ~points ~responses held)
        ~points:!points ~responses:!responses ()
    in
    cv
  in
  for _ = 1 to rounds do
    let cv = cv_of () in
    steps :=
      { sample_size = Array.length !points; cv_error_pct = cv.Crossval.mean_pct }
      :: !steps;
    (* score a random candidate pool and take the best [batch] *)
    let candidates =
      Array.init pool (fun _ -> Array.init dim (fun _ -> Stats.Rng.unit_float rng))
    in
    let scored =
      Array.map
        (fun c ->
          (acquisition ~points:!points ~residuals:cv.Crossval.residuals c, c))
        candidates
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) scored;
    let chosen = Array.init batch (fun i -> snd scored.(i)) in
    let new_responses = Response.evaluate_many response chosen in
    points := Array.append !points chosen;
    responses := Array.append !responses new_responses
  done;
  let final_cv = cv_of () in
  steps :=
    {
      sample_size = Array.length !points;
      cv_error_pct = final_cv.Crossval.mean_pct;
    }
    :: !steps;
  (* final full tuning over every simulated point *)
  let tune =
    Tune.tune ~dim ~points:!points ~responses:!responses ()
  in
  let trained =
    {
      Build.predictor =
        Predictor.make ~space
          ~network:tune.Tune.selection.Archpred_rbf.Selection.network
          ~tree:tune.Tune.tree ~p_min:tune.Tune.p_min ~alpha:tune.Tune.alpha
          ();
      sample = !points;
      sample_responses = !responses;
      discrepancy = Design.Discrepancy.l2_star !points;
      criterion = tune.Tune.criterion;
      tune;
    }
  in
  {
    trained;
    steps = List.rev !steps;
    total_simulations = Array.length !points;
  }
