(** LRU memoisation of predictions, keyed by quantized design points.

    The design space has finitely many levels per axis (Table 1), so
    on-grid points — which is what sampling plans, sweeps and realistic
    serving traffic produce — have exact small-integer keys: the level
    index per dimension.  The cache maps those keys to predicted
    responses with deterministic least-recently-used eviction.

    Bit-identity: a point is only cached when its coordinates are
    *bitwise* reproducible from the level grid (the canonical
    [k /. (l - 1)] form that {!Archpred_design.Parameter.snap}
    produces).  Anything else is a {!Bypass}: evaluated directly, never
    cached.  Cached and uncached predictions are therefore always
    bit-identical.

    Counters (hits / misses / evictions / bypasses) are tracked both in
    {!stats} and on the {!Archpred_obs} handle as [memo.hits],
    [memo.misses], [memo.evictions] and [memo.bypasses]. *)

type t

type key
(** Issued by a [Miss]; pass it back to {!insert} with the computed
    value. *)

type lookup =
  | Hit of float  (** cached value; entry refreshed to most recent *)
  | Miss of key  (** cacheable point, not yet present *)
  | Bypass  (** off-grid point: evaluate directly, do not cache *)

val create :
  ?obs:Archpred_obs.t ->
  capacity:int ->
  space:Archpred_design.Space.t ->
  sample_size:int ->
  unit ->
  t
(** A cache for points on the grid of [space] at [sample_size] levels
    per [Per_sample] axis (matching [Space.snap ~sample_size]).
    Raises [Invalid_argument] if [capacity < 1]. *)

val lookup : t -> Archpred_design.Space.point -> lookup
(** Classify a query point, counting the outcome.  A [Hit] refreshes
    the entry's recency. *)

val insert : t -> key -> float -> unit
(** Record the value for a missed key, evicting the least recently
    used entry when the cache is full.  Inserting an existing key
    refreshes it. *)

val probe_batch :
  t ->
  Archpred_design.Space.point array ->
  out:float array ->
  miss:int array ->
  int
(** [probe_batch t points ~out ~miss] classifies a whole batch in one
    pass: hits write their cached value into [out] at the point's index
    (refreshing recency in stream order), and every non-hit (miss or
    bypass) records its index into [miss].  Returns the number of
    recorded indices.  Cacheable missed keys are retained internally for
    the next {!commit}; a subsequent [probe_batch] discards them.

    Unlike per-point {!lookup}, the probe allocates nothing on the hit
    path (one shared key scratch, batched counter updates) — this is
    what makes the cached serving path cheaper than re-running the
    kernel.  Classification and the resulting values are identical to
    the scalar sequence.  Raises [Invalid_argument] if [out] or [miss]
    is shorter than [points]. *)

val commit : t -> float array -> unit
(** [commit t values] inserts every cacheable miss recorded by the last
    {!probe_batch}, reading each value from [values] at the miss's
    original index, in stream order (so eviction order matches the
    scalar insert sequence).  Clears the pending set. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;
  size : int;
  capacity : int;
}

val stats : t -> stats

val contents : t -> (int array * float) list
(** Entries in most-to-least recently used order, as (level indices,
    value) pairs — the observable recency order tests assert against. *)
