module Design = Archpred_design
module Stats = Archpred_stats
module Rbf = Archpred_rbf
module Obs = Archpred_obs
module Json = Archpred_obs.Json

(* Reproducible serving load test: the measurement harness behind
   BENCH_serve.json and the `archpred serve` / `bench --serve` entry
   points.

   A seeded synthetic query stream draws from a pool of
   [distinct_points] on-grid design points (the key-reuse factor is
   predictions / distinct_points), then the same stream is timed
   through three paths:

   - the scalar reference, [Predictor.predict], one call per point;
   - the batched kernel through the public [Predictor.predict_batch];
   - [predict_batch] again with the quantized LRU memo in front.

   A fourth number, [kernel_ns_per_point], times [Batch_kernel.eval_into]
   over pre-marshalled query buffers: the raw zero-allocation kernel
   with the array-of-points marshalling excluded.

   The stream and therefore every predicted value is deterministic
   ([checksum] anchors that); the timings are measurements and vary
   run to run. *)

type config = {
  batch_size : int;
  batches : int;
  distinct_points : int;  (** pool of unique on-grid query points *)
  grid_sample_size : int;  (** levels per [Per_sample] axis when snapping *)
  seed : int;
  cache_capacity : int;
}

let default =
  {
    batch_size = 256;
    batches = 256;
    distinct_points = 512;
    grid_sample_size = 90;
    seed = 7;
    cache_capacity = 4096;
  }

type result = {
  config : config;
  predictions : int;
  key_reuse : float;
  scalar_ns_per_point : float;
  batch_ns_per_point : float;
  kernel_ns_per_point : float;
  cached_ns_per_point : float;
  predictions_per_sec : float;
  speedup_vs_scalar : float;
  hit_rate : float;
  cache : Memo.stats;
  checksum : float;
}

let now () = Int64.to_float (Obs.now_ns ())

let run ?(obs = Obs.null) ~predictor config =
  let reject what = Obs.Error.invalid_input ~where:"Serve.run" what in
  if config.batch_size < 1 then reject "batch_size < 1";
  if config.batches < 1 then reject "batches < 1";
  if config.distinct_points < 1 then reject "distinct_points < 1";
  if config.cache_capacity < 1 then reject "cache_capacity < 1";
  Obs.with_span obs "serve.load_test" @@ fun () ->
  let space = predictor.Predictor.space in
  let dim = Design.Space.dimension space in
  let rng = Stats.Rng.create config.seed in
  let pool =
    Array.init config.distinct_points (fun _ ->
        Design.Space.snap space ~sample_size:config.grid_sample_size
          (Array.init dim (fun _ -> Stats.Rng.unit_float rng)))
  in
  let total = config.batches * config.batch_size in
  let stream =
    Array.init total (fun _ -> Stats.Rng.int rng config.distinct_points)
  in
  (* the query stream is materialised up front: the load test measures
     prediction cost, not stream generation, and every path consumes
     the identical batches *)
  let batches =
    Array.init config.batches (fun b ->
        Array.init config.batch_size (fun i ->
            pool.(stream.((b * config.batch_size) + i))))
  in
  (* scalar reference path, capped so huge budgets don't spend their
     time in the slow path being compared against *)
  let scalar_n = min total 4096 in
  let checksum = ref 0. in
  let t0 = now () in
  for i = 0 to scalar_n - 1 do
    checksum := !checksum +. Predictor.predict predictor pool.(stream.(i))
  done;
  let scalar_ns = (now () -. t0) /. float_of_int scalar_n in
  let scalar_checksum = !checksum in
  (* batched path through the public API *)
  checksum := 0.;
  let t0 = now () in
  Array.iter
    (fun pts ->
      let out = Predictor.predict_batch ~obs predictor pts in
      let acc = ref 0. in
      Array.iter (fun v -> acc := !acc +. v) out;
      checksum := !checksum +. !acc)
    batches;
  let batch_ns = (now () -. t0) /. float_of_int total in
  let batch_checksum = !checksum in
  (* raw kernel: pre-marshalled queries, zero allocation per batch *)
  let packed = predictor.Predictor.packed in
  let queries = Rbf.Batch_kernel.create_buffer (config.batch_size * dim) in
  let out_buf = Rbf.Batch_kernel.create_buffer config.batch_size in
  let t0 = now () in
  Array.iter
    (fun pts ->
      Rbf.Batch_kernel.load_queries packed queries pts;
      Rbf.Batch_kernel.eval_into packed ~queries ~n:config.batch_size
        ~out:out_buf)
    batches;
  let kernel_ns = (now () -. t0) /. float_of_int total in
  (* cached path: same stream through the quantized LRU memo *)
  let cache =
    Memo.create ~obs ~capacity:config.cache_capacity ~space
      ~sample_size:config.grid_sample_size ()
  in
  checksum := 0.;
  let t0 = now () in
  Array.iter
    (fun pts ->
      let out = Predictor.predict_batch ~obs ~cache predictor pts in
      let acc = ref 0. in
      Array.iter (fun v -> acc := !acc +. v) out;
      checksum := !checksum +. !acc)
    batches;
  let cached_ns = (now () -. t0) /. float_of_int total in
  let cached_checksum = !checksum in
  (* the three paths must agree exactly; a mismatch is a kernel bug,
     not a measurement artefact *)
  if
    not
      (Int64.equal
         (Int64.bits_of_float batch_checksum)
         (Int64.bits_of_float cached_checksum))
  then reject "cached and uncached predictions disagree";
  ignore scalar_checksum;
  let stats = Memo.stats cache in
  let classified = stats.Memo.hits + stats.Memo.misses + stats.Memo.bypasses in
  Obs.count obs "serve.predictions" (3 * total);
  {
    config;
    predictions = total;
    key_reuse = float_of_int total /. float_of_int config.distinct_points;
    scalar_ns_per_point = scalar_ns;
    batch_ns_per_point = batch_ns;
    kernel_ns_per_point = kernel_ns;
    cached_ns_per_point = cached_ns;
    predictions_per_sec = 1e9 /. batch_ns;
    speedup_vs_scalar = scalar_ns /. batch_ns;
    hit_rate =
      (if classified = 0 then 0.
       else float_of_int stats.Memo.hits /. float_of_int classified);
    cache = stats;
    checksum = batch_checksum;
  }

(* ------------------------------------------------------------------ *)
(* The BENCH_serve.json shape                                         *)
(* ------------------------------------------------------------------ *)

let json_of_result r =
  Json.Obj
    [
      ("batch_size", Json.Int r.config.batch_size);
      ("batches", Json.Int r.config.batches);
      ("predictions", Json.Int r.predictions);
      ("distinct_points", Json.Int r.config.distinct_points);
      ("grid_sample_size", Json.Int r.config.grid_sample_size);
      ("seed", Json.Int r.config.seed);
      ("cache_capacity", Json.Int r.config.cache_capacity);
      ("key_reuse", Json.Float r.key_reuse);
      ("scalar_ns_per_point", Json.Float r.scalar_ns_per_point);
      ("batch_ns_per_point", Json.Float r.batch_ns_per_point);
      ("kernel_ns_per_point", Json.Float r.kernel_ns_per_point);
      ("cached_ns_per_point", Json.Float r.cached_ns_per_point);
      ("predictions_per_sec", Json.Float r.predictions_per_sec);
      ("speedup_vs_scalar", Json.Float r.speedup_vs_scalar);
      ("hit_rate", Json.Float r.hit_rate);
      ("cache_hits", Json.Int r.cache.Memo.hits);
      ("cache_misses", Json.Int r.cache.Memo.misses);
      ("cache_evictions", Json.Int r.cache.Memo.evictions);
      ("cache_bypasses", Json.Int r.cache.Memo.bypasses);
      ("checksum", Json.Float r.checksum);
    ]

let schema = "archpred-serve-v1"

let json ?(extra = []) results =
  Bench_report.obj ~schema
    (("runs", Json.List (List.map json_of_result results)) :: extra)

let write_json ?(extra = []) ~path results =
  Bench_report.write ~path ~schema
    (("runs", Json.List (List.map json_of_result results)) :: extra)
