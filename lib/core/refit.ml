module Tree = Archpred_regtree.Tree
module Rbf = Archpred_rbf
module Parallel = Archpred_stats.Parallel
module Obs = Archpred_obs

(* One tuning-grid cell's retained state.  The tree, candidate centers and
   Gram moments are frozen at the last full build; streamed steps extend
   the moments row by row and re-run the (cheap, moment-driven) selection
   against the grown sample. *)
type cell = {
  p_min : int;
  alpha : float;
  tree : Tree.t;
  candidates : Rbf.Tree_centers.candidate array;
  centers : Rbf.Network.center array;  (* candidates' centers, unwrapped *)
  scorer : Rbf.Subset_scorer.t;
}

type t = {
  criterion : Rbf.Criteria.t;
  p_min_grid : int list;
  alpha_grid : float list;
  domains : int option;
  obs : Obs.t;
  full_every : int;
  mutable cells : cell array;  (* [||] until the first {!fit} *)
  mutable rows : int;  (* sample rows folded into every cell's moments *)
  mutable steps : int;  (* completed {!fit} calls *)
}

let create config =
  let {
    Config.criterion;
    p_min_grid;
    alpha_grid;
    domains;
    obs;
    refit_full_every;
    _;
  } =
    config
  in
  if p_min_grid = [] || alpha_grid = [] then
    Obs.Error.invalid_input ~where:"Refit.create" "empty grid";
  if refit_full_every < 0 then
    Obs.Error.invalid_input ~where:"Refit.create" "refit_full_every < 0";
  {
    criterion;
    p_min_grid;
    alpha_grid;
    domains;
    obs;
    full_every = refit_full_every;
    cells = [||];
    rows = 0;
    steps = 0;
  }

let rows t = t.rows
let steps t = t.steps

let result_of_cell (c : cell) (selection : Rbf.Selection.result) =
  {
    Tune.p_min = c.p_min;
    alpha = c.alpha;
    criterion = selection.Rbf.Selection.criterion;
    tree = c.tree;
    selection;
  }

let best_of (results : Tune.result array) =
  let best = ref results.(0) in
  for i = 1 to Array.length results - 1 do
    if results.(i).Tune.criterion < !best.Tune.criterion then
      best := results.(i)
  done;
  !best

(* Build every cell from scratch at the current sample, retaining the tree,
   candidates and Gram moments for later streamed steps.  Cells are laid
   out in canonical grid order (p_min outer, alpha inner) so the arg-min —
   earliest cell on a tie — matches [Tune.tune] exactly. *)
let full_build t ~dim ~points ~responses =
  let obs = t.obs and criterion = t.criterion and domains = t.domains in
  let n = Array.length points in
  let p_mins = Array.of_list t.p_min_grid in
  let trees =
    Parallel.map ?domains
      (fun p_min -> Tree.build ~obs ~p_min ~dim ~points ~responses ())
      p_mins
  in
  let tree_for p_min =
    let rec find i = if p_mins.(i) = p_min then trees.(i) else find (i + 1) in
    find 0
  in
  let grid =
    Array.of_list
      (List.concat_map
         (fun p_min ->
           List.map (fun alpha -> (p_min, alpha)) t.alpha_grid)
         t.p_min_grid)
  in
  let built =
    Parallel.map ?domains
      (fun (p_min, alpha) ->
        let tree = tree_for p_min in
        let candidates = Rbf.Tree_centers.of_tree ~alpha tree in
        let centers =
          Array.map (fun c -> c.Rbf.Tree_centers.center) candidates
        in
        let design = Rbf.Network.design_matrix centers points in
        let scorer = Rbf.Subset_scorer.create ~design ~responses in
        let cell = { p_min; alpha; tree; candidates; centers; scorer } in
        let selection =
          Rbf.Selection.select ~obs ~criterion ~scorer ~tree ~candidates
            ~points ~responses ()
        in
        (cell, result_of_cell cell selection))
      grid
  in
  Obs.count obs "refit.rows_full" (n * Array.length grid);
  t.cells <- Array.map fst built;
  t.rows <- n;
  best_of (Array.map snd built)

(* Extend every cell's moments by the new sample rows (rank-1 pushes, in
   index order — the order is part of the determinism contract) and re-run
   the selection against the grown sample.  The tree and candidate set
   stay frozen: only the moments and the selected subset move. *)
let stream_step t ~points ~responses =
  let obs = t.obs and criterion = t.criterion in
  let n = Array.length points in
  let from = t.rows in
  let results =
    Parallel.map ?domains:t.domains
      (fun cell ->
        for i = from to n - 1 do
          let x = points.(i) in
          let row =
            Array.map (fun c -> Rbf.Network.basis c x) cell.centers
          in
          Rbf.Subset_scorer.add_row cell.scorer ~row ~y:responses.(i)
        done;
        let selection =
          Rbf.Selection.select ~obs ~criterion ~scorer:cell.scorer
            ~tree:cell.tree ~candidates:cell.candidates ~points ~responses ()
        in
        result_of_cell cell selection)
      t.cells
  in
  Obs.count obs "refit.rows_pushed" ((n - from) * Array.length t.cells);
  t.rows <- n;
  best_of results

let fit t ~dim ~points ~responses =
  let n = Array.length points in
  if n <> Array.length responses then
    invalid_arg "Refit.fit: points/responses mismatch";
  if n = 0 then invalid_arg "Refit.fit: empty sample";
  if n < t.rows then
    invalid_arg "Refit.fit: sample shrank (fit expects a growing prefix)";
  Obs.with_span t.obs "build.refit" @@ fun () ->
  t.steps <- t.steps + 1;
  if t.cells = [||] then full_build t ~dim ~points ~responses
  else
    let streamed = stream_step t ~points ~responses in
    if t.full_every > 0 && t.steps mod t.full_every = 0 then (
      (* Periodic drift check: rebuild from scratch, publish the criterion
         gap, and adopt the rebuilt basis going forward. *)
      let full = full_build t ~dim ~points ~responses in
      Obs.incr t.obs "refit.crosschecks";
      Obs.gauge t.obs "refit.crosscheck_delta"
        (Float.abs (streamed.Tune.criterion -. full.Tune.criterion));
      full)
    else streamed
