(** K-fold cross-validation of trained models.

    Estimates out-of-sample accuracy from the training sample alone —
    useful when extra simulations for a test set are too expensive, and
    the machinery behind {!Adaptive} sampling's refinement criterion. *)

type result = {
  fold_errors : float array;  (** mean absolute percentage error per fold *)
  mean_pct : float;  (** average over folds *)
  residuals : float array;  (** per-point held-out residuals, in sample
                                order: prediction minus actual *)
}

val k_fold :
  ?k:int ->
  rng:Archpred_stats.Rng.t ->
  train:
    (points:Archpred_design.Space.point array ->
     responses:float array ->
     Archpred_design.Space.point array ->
     float array) ->
  points:Archpred_design.Space.point array ->
  responses:float array ->
  unit ->
  result
(** [k_fold ~train ~points ~responses ()] shuffles the sample into [k]
    (default 5) folds; for each fold, [train] fits on the remaining points
    and predicts the held-out ones.  [train ~points ~responses] returns a
    *batch* prediction function of a model fitted to that subsample: it
    receives every held-out point of the fold at once (one vectorised
    pass for RBF models) and must return one prediction per point, in
    order.  Raises [Archpred (Invalid_input _)] if the sample has fewer
    than [k] points or responses contain zeros (percentage errors are
    undefined). *)

val rbf_trainer :
  ?p_min:int ->
  ?alpha:float ->
  dim:int ->
  unit ->
  points:Archpred_design.Space.point array ->
  responses:float array ->
  Archpred_design.Space.point array ->
  float array
(** A ready-made trainer for {!k_fold}: regression tree + RBF selection
    with fixed method parameters (defaults p_min 1, alpha 7); the
    returned closure predicts through the packed batch kernel. *)
