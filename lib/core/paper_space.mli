(** The paper's 9-parameter microarchitectural design space.

    Table 1 defines the training space; Table 2 a narrower box inside it
    from which the 50 random test points are drawn.  Issue-queue and LSQ
    sizes are expressed as fractions of the ROB size (0.25–0.75 of ROB in
    Table 1, 0.31–0.69 in Table 2), so those two dimensions are ratios and
    the decoded configuration multiplies them out. *)

val space : Archpred_design.Space.t
(** The Table 1 space.  Dimension order (fixed, also the order of
    {!param_names}): pipe_depth, ROB_size, IQ_ratio, LSQ_ratio, L2_size,
    L2_lat, il1_size, dl1_size, dl1_lat. *)

val param_names : string array
(** The nine names, in dimension order. *)

val dim : int
(** 9. *)

val test_lo : Archpred_design.Space.point
val test_hi : Archpred_design.Space.point
(** Normalised corners of the Table 2 test box inside {!space}. *)

val to_config : Archpred_design.Space.point -> Archpred_sim.Config.t
(** Decode a normalised point into a simulator configuration: natural
    values are rounded, IQ/LSQ ratios are applied to the decoded ROB size,
    and cache sizes are rounded up to powers of two. *)

val test_points :
  Archpred_stats.Rng.t -> n:int -> Archpred_design.Space.point array
(** Independently random test points inside the Table 2 box (section 3:
    "fifty such design points within a more restricted parameter
    space"). *)

(** {1 The extended ten-axis space}

    The paper's nine parameters plus the cache-replacement policy as a
    four-level categorical axis.  The 9-D {!space} is unchanged (every
    seeded paper reproduction keeps its numbers); the extended space is
    an opt-in scenario axis for sensitivity studies. *)

val extended_space : Archpred_design.Space.t
(** {!space} with a tenth dimension, [cache_policy]: four integer levels
    decoding, in the order of [Archpred_sim.Cache.Policy.all], to LRU,
    Tree-PLRU, QLRU and MRU across IL1, DL1 and L2. *)

val extended_param_names : string array
(** The ten names, in dimension order. *)

val extended_dim : int
(** 10. *)

val policy_of_level : float -> Archpred_sim.Cache.Policy.t
(** Map the decoded natural value of the tenth axis to a policy
    (clamped to the valid level range). *)

val to_config_extended :
  Archpred_design.Space.point -> Archpred_sim.Config.t
(** Decode a normalised 10-D point: the first nine axes as {!to_config},
    the tenth selecting the replacement policy. *)
