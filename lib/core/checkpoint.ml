module Json = Archpred_obs.Json
module Fault = Archpred_fault.Fault

type record = { index : int; point : float array; value : float }

type t = {
  path : string;
  oc : out_channel;
  lock : Mutex.t;
  sync_every : int;
  mutable pending : int;  (* appends since the last fsync *)
  mutable closed : bool;
}

let format_name = "archpred-checkpoint"
let format_version = 1

(* Hexadecimal float literals round-trip every bit pattern (including the
   sign of zero), unlike decimal shortest-form printing rounded through a
   JSON parser. *)
let float_to_hex f = Printf.sprintf "%h" f

let float_of_hex i s =
  match float_of_string_opt s with
  | Some f -> f
  | None ->
      Archpred_obs.Error.parse_error ~where:"Checkpoint" ~line:i
        ("bad float literal " ^ s)

let frame payload = Crc32.to_hex (Crc32.string payload) ^ " " ^ payload ^ "\n"

let float_to_hex_string = float_to_hex
let float_of_hex_string = float_of_string_opt

let header_payload ~n ~dim ~seed ~response =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.String "header");
         ("format", Json.String format_name);
         ("version", Json.Int format_version);
         ("n", Json.Int n);
         ("dim", Json.Int dim);
         ("seed", Json.Int seed);
         ("response", Json.String response);
       ])

let record_payload { index; point; value } =
  Json.to_string
    (Json.Obj
       [
         ("type", Json.String "record");
         ("index", Json.Int index);
         ( "point",
           Json.List
             (Array.to_list
                (Array.map (fun x -> Json.String (float_to_hex x)) point)) );
         ("value", Json.String (float_to_hex value));
       ])

(* ---------- replay ---------- *)

(* One framed line, already known to be newline-terminated: split the
   checksum from the payload and verify it.  [None] means the line is not
   an intact frame (a torn or corrupted tail). *)
let unframe line =
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    let payload = String.sub line 9 (String.length line - 9) in
    match Crc32.of_hex (String.sub line 0 8) with
    | Some crc when Crc32.string payload = crc -> (
        match Json.of_string payload with Ok j -> Some j | Error _ -> None)
    | Some _ | None -> None

let member_int k j =
  match Json.member k j with Some (Json.Int v) -> Some v | _ -> None

let member_string k j =
  match Json.member k j with Some (Json.String v) -> Some v | _ -> None

let json_type j = member_string "type" j

let record_of_json ~line j =
  let fail msg = Archpred_obs.Error.parse_error ~where:"Checkpoint" ~line msg in
  let index = match member_int "index" j with Some i -> i | None -> fail "record without index" in
  let value =
    match member_string "value" j with
    | Some v -> float_of_hex line v
    | None -> fail "record without value"
  in
  let point =
    match Json.member "point" j with
    | Some (Json.List xs) ->
        Array.of_list
          (List.map
             (function
               | Json.String s -> float_of_hex line s
               | _ -> fail "record point with non-string coordinate")
             xs)
    | _ -> fail "record without point"
  in
  { index; point; value }

(* Read the intact prefix: returns the parsed header json (if line 1 is
   intact), the records in journal order, and the byte offset at which
   the intact prefix ends.  The first torn or corrupted line ends the
   replay — everything after it is the crash's garbage. *)
let read_prefix path =
  match open_in_bin path with
  | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let size = in_channel_length ic in
          let header = ref None and records = ref [] in
          let valid_end = ref 0 and line_no = ref 0 and stop = ref false in
          while not !stop do
            let before = pos_in ic in
            match input_line ic with
            | exception End_of_file -> stop := true
            | line ->
                let after = pos_in ic in
                (* [input_line] strips the newline; a line that ends at
                   EOF without one is a torn write. *)
                let terminated =
                  after > before + String.length line || after < size
                in
                if not terminated then stop := true
                else (
                  incr line_no;
                  match unframe line with
                  | None -> stop := true
                  | Some j ->
                      if !line_no = 1 then (
                        header := Some (j, !line_no);
                        valid_end := after)
                      else (
                        match json_type j with
                        | Some "record" ->
                            records := (record_of_json ~line:!line_no j, !line_no) :: !records;
                            valid_end := after
                        | _ -> stop := true))
          done;
          (!header, List.rev !records, !valid_end))

let dedup_first records =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (r, _) ->
      if Hashtbl.mem seen r.index then false
      else (
        Hashtbl.add seen r.index ();
        true))
    records

let scan ~path =
  let _header, records, _end = read_prefix path in
  List.map fst (dedup_first records)

(* ---------- writer ---------- *)

let fsync_oc path oc =
  match Unix.fsync (Unix.descr_of_out_channel oc) with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
      Archpred_obs.Error.io_error ~path (Unix.error_message err)

let sync_locked t =
  Fault.point "checkpoint.sync";
  flush t.oc;
  fsync_oc t.path t.oc;
  t.pending <- 0

let fresh ~path ~n ~dim ~seed ~response ~sync_every =
  match
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path
  with
  | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg
  | oc ->
      let t =
        {
          path;
          oc;
          lock = Mutex.create ();
          sync_every;
          pending = 0;
          closed = false;
        }
      in
      (match
         output_string oc (frame (header_payload ~n ~dim ~seed ~response));
         sync_locked t
       with
      | () -> t
      | exception e ->
          (* don't leak an open channel whose deferred flush could land
             on a journal reopened by a resumed run *)
          close_out_noerr oc;
          t.closed <- true;
          raise e)

let check_header ~path ~n ~dim ~seed ~response (j, line) =
  let fail msg = Archpred_obs.Error.parse_error ~where:("Checkpoint " ^ path) ~line msg in
  if json_type j <> Some "header" || member_string "format" j <> Some format_name
  then fail "not an archpred checkpoint journal";
  (match member_int "version" j with
  | Some v when v = format_version -> ()
  | _ -> fail "unsupported checkpoint version");
  let want name expect got =
    if got <> Some expect then
      fail
        (Printf.sprintf "journal belongs to a different run (%s mismatch)" name)
  in
  want "n" n (member_int "n" j);
  want "dim" dim (member_int "dim" j);
  want "seed" seed (member_int "seed" j);
  if member_string "response" j <> Some response then
    fail "journal belongs to a different run (response mismatch)"

let start ~path ~n ~dim ~seed ~response ~resume ?(sync_every = 32) () =
  if sync_every < 1 then invalid_arg "Checkpoint.start: sync_every < 1";
  if not (resume && Sys.file_exists path) then
    (fresh ~path ~n ~dim ~seed ~response ~sync_every, [])
  else
    let header, records, valid_end = read_prefix path in
    match header with
    | None ->
        (* The crash tore even the header: nothing to keep. *)
        (fresh ~path ~n ~dim ~seed ~response ~sync_every, [])
    | Some h ->
        check_header ~path ~n ~dim ~seed ~response h;
        let records = dedup_first records in
        List.iter
          (fun (r, line) ->
            if r.index < 0 || r.index >= n then
              Archpred_obs.Error.parse_error ~where:("Checkpoint " ^ path)
                ~line
                (Printf.sprintf "record index %d out of range (n = %d)" r.index n);
            if Array.length r.point <> dim then
              Archpred_obs.Error.parse_error ~where:("Checkpoint " ^ path)
                ~line
                (Printf.sprintf "record point has %d coordinates (dim = %d)"
                   (Array.length r.point) dim))
          records;
        (* Cut the torn tail off before appending over it. *)
        (try
           let size = (Unix.stat path).Unix.st_size in
           if valid_end < size then Unix.truncate path valid_end
         with Unix.Unix_error (err, _, _) ->
           Archpred_obs.Error.io_error ~path (Unix.error_message err));
        (match
           open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
         with
        | exception Sys_error msg -> Archpred_obs.Error.io_error ~path msg
        | oc ->
            let t =
              {
                path;
                oc;
                lock = Mutex.create ();
                sync_every;
                pending = 0;
                closed = false;
              }
            in
            (t, List.map fst records))

let append t r =
  Fault.point "checkpoint.append";
  let line = frame (record_payload r) in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      (try
         output_string t.oc line;
         flush t.oc
       with Sys_error msg -> Archpred_obs.Error.io_error ~path:t.path msg);
      t.pending <- t.pending + 1;
      if t.pending >= t.sync_every then sync_locked t)

let sync t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> sync_locked t)

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then (
        sync_locked t;
        close_out t.oc;
        t.closed <- true))

let close_noerr t =
  Mutex.lock t.lock;
  if not t.closed then (
    close_out_noerr t.oc;
    t.closed <- true);
  Mutex.unlock t.lock
