module Design = Archpred_design
module Rng = Archpred_stats.Rng
module Obs = Archpred_obs

type result = {
  point : Design.Space.point;
  predicted : float;
  evaluations : int;
}

let minimize ?(config = Config.default) ?(scan = 2000) ?(refine_iters = 50)
    ?constraint_ ~predictor () =
  let rng = Config.rng_of config in
  let obs = config.Config.obs in
  Obs.with_span obs "search.minimize" @@ fun () ->
  let space = predictor.Predictor.space in
  let dim = Design.Space.dimension space in
  let feasible p = match constraint_ with None -> true | Some f -> f p in
  let evals = ref 0 in
  let value p =
    incr evals;
    Predictor.predict predictor p
  in
  (* Broad scan, batched: draw every candidate first (same generator
     stream as the old draw/predict interleaving — prediction never
     touches the rng), then one packed-kernel pass over the feasible
     ones.  [predict_batch] is bit-identical to [predict] and the
     arg-min keeps the earliest candidate on ties, so the incumbent
     matches the old pointwise scan exactly. *)
  let candidates = Array.make scan [||] in
  for i = 0 to scan - 1 do
    candidates.(i) <- Array.init dim (fun _ -> Rng.unit_float rng)
  done;
  let feas =
    Array.of_list (List.filter feasible (Array.to_list candidates))
  in
  let scanned = Predictor.predict_batch ~obs predictor feas in
  evals := !evals + Array.length feas;
  let best = ref None in
  Array.iteri
    (fun i p ->
      let v = scanned.(i) in
      match !best with
      | Some (_, bv) when bv <= v -> ()
      | Some _ | None -> best := Some (p, v))
    feas;
  match !best with
  | None ->
      Obs.count obs "search.evaluations" !evals;
      Obs.Error.infeasible ~where:"Search.minimize"
        "no feasible point found in scan"
  | Some (p0, v0) ->
      let point = Array.copy p0 in
      let best_v = ref v0 in
      let step = ref 0.25 in
      for _ = 1 to refine_iters do
        for k = 0 to dim - 1 do
          let try_coord u =
            if u >= 0. && u <= 1. then begin
              let saved = point.(k) in
              point.(k) <- u;
              if feasible point then begin
                let v = value point in
                if v < !best_v then best_v := v else point.(k) <- saved
              end
              else point.(k) <- saved
            end
          in
          try_coord (point.(k) +. !step);
          try_coord (point.(k) -. !step)
        done;
        step := !step *. 0.7
      done;
      Obs.count obs "search.evaluations" !evals;
      { point; predicted = !best_v; evaluations = !evals }
