(** A trained performance predictor.

    Wraps a fitted RBF network together with the design space it was
    trained over, so callers can predict from natural parameter values
    as well as normalised points.  Every predictor also carries the
    network packed into struct-of-arrays storage ({!Archpred_rbf.Network.packed},
    built by {!make}), which backs the batched prediction API. *)

type t = {
  space : Archpred_design.Space.t;
  network : Archpred_rbf.Network.t;
  packed : Archpred_rbf.Network.packed;
      (** contiguous storage for {!predict_batch}; derived from
          [network] by {!make} — construct predictors through {!make}
          so the two can never disagree *)
  tree : Archpred_regtree.Tree.t option;
      (** the regression tree behind the centers, kept for split analyses;
          [None] for models loaded from disk ({!Persist}) *)
  p_min : int;
  alpha : float;
}

val make :
  space:Archpred_design.Space.t ->
  network:Archpred_rbf.Network.t ->
  ?tree:Archpred_regtree.Tree.t ->
  p_min:int ->
  alpha:float ->
  unit ->
  t
(** The constructor: packs [network] at build/load time. *)

val predict : t -> Archpred_design.Space.point -> float
(** Predicted response (CPI) at a normalised design point.  The scalar
    reference path; {!predict_batch} is bit-identical to it. *)

val predict_natural : t -> float array -> float
(** Predict from natural parameter values (encoded through the space). *)

val predict_batch :
  ?obs:Archpred_obs.t ->
  ?cache:Memo.t ->
  t ->
  Archpred_design.Space.point array ->
  float array
(** Predict a batch of points through the packed kernel — one
    vectorised pass, no allocation per point.  With [cache], on-grid
    points are served from / inserted into the LRU memo ({!Memo});
    results are bit-identical to {!predict} either way.  [obs] counts
    [predict.batches] and [predict.points]. *)

val predict_natural_batch :
  ?obs:Archpred_obs.t -> ?cache:Memo.t -> t -> float array array -> float array
(** Batched {!predict_natural}. *)

val n_centers : t -> int

val errors_on :
  t ->
  points:Archpred_design.Space.point array ->
  actual:float array ->
  Archpred_stats.Error_metrics.t
(** Prediction-error metrics against reference responses — the mean /
    std / max percentage errors the paper reports.  Predictions run
    through {!predict_batch}. *)
