(** Response functions: the black box that maps a design point to CPI.

    Model construction only ever sees a function from normalised design
    points to a scalar response.  The production instance runs the
    cycle-level simulator on a fixed benchmark trace (step 3 of the
    paper's procedure); synthetic instances provide cheap, closed-form
    surfaces for tests and ablations. *)

type t = {
  name : string;
  eval : Archpred_design.Space.point -> float;
}

val simulator :
  ?obs:Archpred_obs.t ->
  ?trace_length:int ->
  ?seed:int ->
  Archpred_workloads.Profile.t ->
  t
(** CPI of the benchmark's synthetic trace, simulated at the decoded
    configuration of each design point.  The trace is generated once
    (default 100_000 instructions) and reused at every design point, as a
    trace-driven simulator would.  Results are memoised per point; each
    cache miss bumps the ["sim.runs"] and ["sim.instructions"] counters on
    [obs] (domain-safe — evaluation happens on worker domains). *)

type metric = Cpi | Energy_per_instruction | Energy_delay_product
(** Simulated response metrics.  The paper's conclusion points at power as
    the next metric to model; {!Archpred_sim.Power} supplies the energy
    accounting. *)

val metric_to_string : metric -> string

val simulator_metric :
  ?obs:Archpred_obs.t ->
  ?trace_length:int ->
  ?seed:int ->
  metric:metric ->
  Archpred_workloads.Profile.t ->
  t
(** Like {!simulator} but for any supported metric ([~metric:Cpi] is
    equivalent to {!simulator}). *)

val evaluate_many :
  ?domains:int -> t -> Archpred_design.Space.point array -> float array
(** Evaluate a batch of points, in parallel across domains when the
    response is simulator-backed (it is pure).  Memoised points are not
    re-simulated. *)

val synthetic_smooth : dim:int -> t
(** A smooth non-linear surface with interactions: exercises the whole
    modelling stack in milliseconds.  Positive everywhere. *)

val synthetic_cliff : dim:int -> t
(** A surface with a sharp response change along dimension 0 — the shape
    linear models cannot capture. *)
