(** Response functions: the black box that maps a design point to CPI.

    Model construction only ever sees a function from normalised design
    points to a scalar response.  The production instance runs the
    cycle-level simulator on a fixed benchmark trace (step 3 of the
    paper's procedure); synthetic instances provide cheap, closed-form
    surfaces for tests and ablations. *)

type t = {
  name : string;
  eval : Archpred_design.Space.point -> float;
  eval_many :
    (?domains:int -> Archpred_design.Space.point array -> float array) option;
      (** Batched evaluator, when the response has one.  Must agree
          bit-for-bit with mapping {!field-eval} over the batch; callers
          reach it through {!evaluate_many}, which falls back to a
          pointwise map when absent. *)
}

val make :
  ?eval_many:
    (?domains:int -> Archpred_design.Space.point array -> float array) ->
  string ->
  (Archpred_design.Space.point -> float) ->
  t
(** [make name eval] builds a response; [?eval_many] installs a batched
    evaluator (omitted: {!evaluate_many} maps [eval] pointwise). *)

val simulator :
  ?obs:Archpred_obs.t ->
  ?trace_length:int ->
  ?seed:int ->
  ?to_config:(Archpred_design.Space.point -> Archpred_sim.Config.t) ->
  Archpred_workloads.Profile.t ->
  t
(** CPI of the benchmark's synthetic trace, simulated at the decoded
    configuration of each design point.  The trace is generated once
    (default 100_000 instructions) and reused at every design point, as a
    trace-driven simulator would.  Results are memoised per point; each
    cache miss bumps the ["sim.runs"] and ["sim.instructions"] counters on
    [obs] (domain-safe — evaluation happens on worker domains).

    The response carries a batched evaluator built on {!Archpred_sim.Batch}:
    {!evaluate_many} decodes the trace once and fans un-memoised points out
    across configurations (bit-identical to the pointwise path).

    [to_config] decodes points into simulator configurations (default
    {!Paper_space.to_config}); pass {!Paper_space.to_config_extended} to
    train over the ten-axis space with the cache-policy dimension. *)

type metric = Cpi | Energy_per_instruction | Energy_delay_product
(** Simulated response metrics.  The paper's conclusion points at power as
    the next metric to model; {!Archpred_sim.Power} supplies the energy
    accounting. *)

val metric_to_string : metric -> string

val simulator_metric :
  ?obs:Archpred_obs.t ->
  ?trace_length:int ->
  ?seed:int ->
  ?to_config:(Archpred_design.Space.point -> Archpred_sim.Config.t) ->
  metric:metric ->
  Archpred_workloads.Profile.t ->
  t
(** Like {!simulator} but for any supported metric ([~metric:Cpi] is
    equivalent to {!simulator}). *)

val evaluate_many :
  ?domains:int -> t -> Archpred_design.Space.point array -> float array
(** Evaluate a batch of points.  Simulator-backed responses route through
    the batched {!Archpred_sim.Batch} engine (trace decoded once, configs
    fanned out over domains); other responses map {!field-eval} in parallel
    across domains.  Memoised points are not re-simulated. *)

val synthetic_smooth : dim:int -> t
(** A smooth non-linear surface with interactions: exercises the whole
    modelling stack in milliseconds.  Positive everywhere. *)

val synthetic_cliff : dim:int -> t
(** A surface with a sharp response change along dimension 0 — the shape
    linear models cannot capture. *)
