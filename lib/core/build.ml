module Design = Archpred_design
module Stats = Archpred_stats
module Obs = Archpred_obs
module Fault = Archpred_fault.Fault
module Config = Config

type trained = {
  predictor : Predictor.t;
  sample : Design.Space.point array;
  sample_responses : float array;
  discrepancy : float;
  criterion : float;
  tune : Tune.result;
}

(* Bit-exact point comparison: replayed journal records must match the
   deterministically re-drawn sample coordinate for coordinate. *)
let bits_equal a b =
  Array.length a = Array.length b
  && (try
        Array.iteri
          (fun i x ->
            if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
              raise Exit)
          a;
        true
      with Exit -> false)

(* Obtain the sample's responses with worker fault isolation and, when
   [config.checkpoint] is set, streaming journal durability.

   Isolation: each simulation task gets [config.task_retries] retries and
   an optional wall-clock deadline; a permanently failing design point
   ends as an [Error] slot instead of poisoning the pool, and after every
   completed point is journaled the batch is reported as
   [Archpred (Infeasible _)].  The per-stage retry / failed-task deltas
   flow into [config.obs] as ["pool.retries"] / ["pool.failed_tasks"].

   Journaling: completed (point, response) records stream to the journal
   as tasks finish, so a crash — injected or real — forfeits at most the
   current fsync batch.  On restart with [config.resume] (the default)
   the journal's valid records are replayed and only the missing points
   are re-simulated; the assembled response array is index-ordered, so
   the final model is bit-identical to an uninterrupted run at any
   domain count. *)
(* Open (or resume) the run's journal and validate the replayed records
   against the deterministically re-drawn [sample].  [n] is the header's
   sample size — the streaming schedule journals its whole nested sample
   under one header, so it may exceed the prefix any one step simulates. *)
let start_journal ~(config : Config.t) ~response ~n sample =
  match config.Config.checkpoint with
  | None -> (None, [])
  | Some path ->
      let dim = if n = 0 then 0 else Array.length sample.(0) in
      let j, records =
        Checkpoint.start ~path ~n ~dim ~seed:config.Config.seed
          ~response:response.Response.name ~resume:config.Config.resume ()
      in
      List.iter
        (fun (r : Checkpoint.record) ->
          if not (bits_equal r.Checkpoint.point sample.(r.Checkpoint.index))
          then
            Obs.Error.invalid_input ~where:"Build.train"
              (Printf.sprintf
                 "checkpoint journal %s: record %d does not match this \
                  run's sample (was it written by a different \
                  configuration?)"
                 path r.Checkpoint.index))
        records;
      (Some j, records)

(* Simulate every not-yet-[have] design point with index below [upto],
   filling [results]/[have] in place and journaling each completed point.
   The journal stays open — the streaming schedule calls this once per
   size step against one journal; [simulate] closes it around a single
   call.  On permanent task failures the journal is synced (a resumed run
   must see every completed point) before [Infeasible] is raised. *)
let simulate_missing ~(config : Config.t) ~response ~journal ~results ~have
    ~upto sample =
  let { Config.domains; obs; task_retries; task_deadline; _ } = config in
  let r0 = Stats.Parallel.retries_total () in
  let f0 = Stats.Parallel.failed_total () in
  let missing =
    Array.of_seq (Seq.filter (fun i -> not have.(i)) (Seq.init upto Fun.id))
  in
  let record i v =
    results.(i) <- v;
    have.(i) <- true
  in
  (* Fast path: a response with a batched evaluator (the simulator)
     runs the missing points in [sim_batch]-sized fan-outs through
     [Sim.Batch] — bit-identical to the pointwise path, so journals
     written by either path replay into the other.  Each completed
     chunk journals point by point; a crash forfeits at most one
     chunk plus the current fsync batch. *)
  match response.Response.eval_many with
  | Some many when config.Config.sim_batch > 1 ->
      let bs = config.Config.sim_batch in
      let pos = ref 0 in
      while !pos < Array.length missing do
        Fault.point "sim.batch";
        let len = min bs (Array.length missing - !pos) in
        let idx = Array.sub missing !pos len in
        let vals = many ?domains (Array.map (fun i -> sample.(i)) idx) in
        Array.iteri
          (fun k i ->
            record i vals.(k);
            match journal with
            | Some j ->
                Checkpoint.append j
                  {
                    Checkpoint.index = i;
                    point = sample.(i);
                    value = vals.(k);
                  }
            | None -> ())
          idx;
        pos := !pos + len
      done
  | Some _ | None -> (
      let outcomes =
        Stats.Parallel.map_fallible ?domains ~retries:task_retries
          ?deadline:task_deadline
          (fun i ->
            Fault.point "sim.task";
            let v = response.Response.eval sample.(i) in
            (match journal with
            | Some j ->
                Checkpoint.append j
                  { Checkpoint.index = i; point = sample.(i); value = v }
            | None -> ());
            v)
          missing
      in
      let failures = ref [] in
      Array.iteri
        (fun k outcome ->
          match outcome with
          | Ok v -> record missing.(k) v
          | Error e -> failures := (missing.(k), e) :: !failures)
        outcomes;
      let failures = List.rev !failures in
      Obs.count obs "pool.retries" (Stats.Parallel.retries_total () - r0);
      Obs.count obs "pool.failed_tasks" (Stats.Parallel.failed_total () - f0);
      match failures with
      | [] -> ()
      | (i0, e0) :: _ ->
          (* Make the journal durable before reporting: a resumed run
             must see every completed point. *)
          Option.iter Checkpoint.sync journal;
          Obs.Error.infeasible ~where:"Build.train"
            (Printf.sprintf
               "%d of %d design points failed permanently (retry budget \
                %d; first failure at point %d: %s); completed simulations \
                %s"
               (List.length failures) upto task_retries i0
               (Printexc.to_string e0)
               (match config.Config.checkpoint with
               | Some p -> "are journaled in " ^ p
               | None -> "were discarded (no checkpoint configured)")))

let simulate ~(config : Config.t) ~response sample =
  let n = Array.length sample in
  let journal, replayed = start_journal ~config ~response ~n sample in
  Fun.protect
    ~finally:(fun () -> Option.iter Checkpoint.close_noerr journal)
    (fun () ->
      let results = Array.make n nan in
      let have = Array.make n false in
      List.iter
        (fun (r : Checkpoint.record) ->
          results.(r.Checkpoint.index) <- r.Checkpoint.value;
          have.(r.Checkpoint.index) <- true)
        replayed;
      simulate_missing ~config ~response ~journal ~results ~have ~upto:n
        sample;
      Option.iter Checkpoint.close journal;
      results)

let train ?(config = Config.default) ~space ~response () =
  let config = Config.validate config in
  let { Config.domains; lhs_candidates; obs; sample_size = n; _ } = config in
  let rng = Config.rng_of config in
  Obs.with_span obs "build.train" @@ fun () ->
  let plan =
    Obs.with_span obs "build.sample" @@ fun () ->
    Design.Optimize.best_lhs ~obs ~kind:Design.Discrepancy.Star
      ~candidates:lhs_candidates ?domains rng space ~n
  in
  let sample = plan.Design.Optimize.points in
  let sample_responses =
    Obs.with_span obs "build.simulate" @@ fun () ->
    simulate ~config ~response sample
  in
  let tune =
    Tune.tune ~config
      ~dim:(Design.Space.dimension space)
      ~points:sample ~responses:sample_responses ()
  in
  Obs.gauge obs "pool.queue_depth"
    (float_of_int (Stats.Parallel.queue_depth ()));
  let predictor =
    Predictor.make ~space
      ~network:tune.Tune.selection.Archpred_rbf.Selection.network
      ~tree:tune.Tune.tree ~p_min:tune.Tune.p_min ~alpha:tune.Tune.alpha ()
  in
  {
    predictor;
    sample;
    sample_responses;
    discrepancy = plan.Design.Optimize.discrepancy;
    criterion = tune.Tune.criterion;
    tune;
  }

type step = {
  size : int;
  trained : trained;
  test_error : Stats.Error_metrics.t;
}

type history = { steps : step list; final : step }

(* The streaming schedule: one LHS campaign at the largest size, whose
   prefix is the size-n sample of every earlier step; each step simulates
   only the new rows and extends the tuning state through {!Refit} instead
   of refitting every grid cell from scratch.  A deliberate departure from
   the paper's redraw-per-size procedure, gated behind
   [Config.stream_refit]. *)
let stream_to_accuracy ~(config : Config.t) ~space ~response ~sizes
    ~test_points ~test_responses ~target_mean_pct =
  let config = Config.validate config in
  let { Config.domains; lhs_candidates; obs; _ } = config in
  let n_max = List.fold_left max 1 sizes in
  let rng = Config.rng_of config in
  Obs.with_span obs "build.stream" @@ fun () ->
  let plan =
    Obs.with_span obs "build.sample" @@ fun () ->
    Design.Optimize.best_lhs ~obs ~kind:Design.Discrepancy.Star
      ~candidates:lhs_candidates ?domains rng space ~n:n_max
  in
  let sample = plan.Design.Optimize.points in
  (* One journal spans the whole schedule (the sample is nested); the
     [.stream] suffix keeps it apart from the per-size journals of the
     default procedure, whose headers it would mismatch. *)
  let config =
    match config.Config.checkpoint with
    | None -> config
    | Some path -> Config.with_checkpoint (path ^ ".stream") config
  in
  let journal, replayed = start_journal ~config ~response ~n:n_max sample in
  Fun.protect
    ~finally:(fun () -> Option.iter Checkpoint.close_noerr journal)
    (fun () ->
      let results = Array.make n_max nan in
      let have = Array.make n_max false in
      List.iter
        (fun (r : Checkpoint.record) ->
          results.(r.Checkpoint.index) <- r.Checkpoint.value;
          have.(r.Checkpoint.index) <- true)
        replayed;
      let refit = Refit.create config in
      let dim = Design.Space.dimension space in
      let rec go acc = function
        | [] ->
            let steps = List.rev acc in
            { steps; final = List.hd acc }
        | n :: rest ->
            (Obs.with_span obs "build.simulate" @@ fun () ->
             simulate_missing ~config ~response ~journal ~results ~have
               ~upto:n sample);
            let points = Array.sub sample 0 n in
            let responses = Array.sub results 0 n in
            let tune = Refit.fit refit ~dim ~points ~responses in
            let predictor =
              Predictor.make ~space
                ~network:tune.Tune.selection.Archpred_rbf.Selection.network
                ~tree:tune.Tune.tree ~p_min:tune.Tune.p_min
                ~alpha:tune.Tune.alpha ()
            in
            let trained =
              {
                predictor;
                sample = points;
                sample_responses = responses;
                discrepancy = plan.Design.Optimize.discrepancy;
                criterion = tune.Tune.criterion;
                tune;
              }
            in
            let test_error =
              Predictor.errors_on trained.predictor ~points:test_points
                ~actual:test_responses
            in
            let step = { size = n; trained; test_error } in
            if test_error.Stats.Error_metrics.mean_pct <= target_mean_pct
            then { steps = List.rev (step :: acc); final = step }
            else go (step :: acc) rest
      in
      let history = go [] sizes in
      Option.iter Checkpoint.close journal;
      history)

let build_to_accuracy ?(config = Config.default) ~space ~response ~sizes
    ~test_points ~test_responses ~target_mean_pct () =
  if sizes = [] then
    Obs.Error.invalid_input ~where:"Build.build_to_accuracy"
      "empty size schedule";
  (* All sizes share one generator stream (resolved once), matching the
     pre-Config behaviour of threading a single stateful rng through. *)
  let config = Config.with_rng (Config.rng_of config) config in
  let sizes = List.sort_uniq Int.compare sizes in
  if config.Config.stream_refit then
    stream_to_accuracy ~config ~space ~response ~sizes ~test_points
      ~test_responses ~target_mean_pct
  else
  (* Each size is its own simulation campaign, so each gets its own
     journal ([path.n<size>]) — replaying a 30-point journal into a
     50-point run would mismatch. *)
  let config_for n =
    let c = Config.with_sample_size n config in
    match config.Config.checkpoint with
    | None -> c
    | Some path -> Config.with_checkpoint (Printf.sprintf "%s.n%d" path n) c
  in
  let rec go acc = function
    | [] ->
        let steps = List.rev acc in
        { steps; final = List.hd acc }
    | n :: rest ->
        let trained = train ~config:(config_for n) ~space ~response () in
        let test_error =
          Predictor.errors_on trained.predictor ~points:test_points
            ~actual:test_responses
        in
        let step = { size = n; trained; test_error } in
        if test_error.Stats.Error_metrics.mean_pct <= target_mean_pct then
          { steps = List.rev (step :: acc); final = step }
        else go (step :: acc) rest
  in
  go [] sizes
