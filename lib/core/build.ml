module Design = Archpred_design
module Stats = Archpred_stats
module Obs = Archpred_obs
module Config = Config

type trained = {
  predictor : Predictor.t;
  sample : Design.Space.point array;
  sample_responses : float array;
  discrepancy : float;
  criterion : float;
  tune : Tune.result;
}

let train ?(config = Config.default) ~space ~response () =
  let config = Config.validate config in
  let { Config.domains; lhs_candidates; obs; sample_size = n; _ } = config in
  let rng = Config.rng_of config in
  Obs.with_span obs "build.train" @@ fun () ->
  let plan =
    Obs.with_span obs "build.sample" @@ fun () ->
    Design.Optimize.best_lhs ~obs ~kind:Design.Discrepancy.Star
      ~candidates:lhs_candidates ?domains rng space ~n
  in
  let sample = plan.Design.Optimize.points in
  let sample_responses =
    Obs.with_span obs "build.simulate" @@ fun () ->
    Response.evaluate_many ?domains response sample
  in
  let tune =
    Tune.tune ~config
      ~dim:(Design.Space.dimension space)
      ~points:sample ~responses:sample_responses ()
  in
  Obs.gauge obs "pool.queue_depth"
    (float_of_int (Stats.Parallel.queue_depth ()));
  let predictor =
    {
      Predictor.space;
      network = tune.Tune.selection.Archpred_rbf.Selection.network;
      tree = Some tune.Tune.tree;
      p_min = tune.Tune.p_min;
      alpha = tune.Tune.alpha;
    }
  in
  {
    predictor;
    sample;
    sample_responses;
    discrepancy = plan.Design.Optimize.discrepancy;
    criterion = tune.Tune.criterion;
    tune;
  }

let config_of_args ?criterion ?p_min_grid ?alpha_grid ?(lhs_candidates = 100)
    ?domains ~rng () =
  let config = { Config.default with rng = Some rng; lhs_candidates; domains } in
  let config =
    match criterion with None -> config | Some c -> { config with criterion = c }
  in
  let config =
    match p_min_grid with
    | None -> config
    | Some g -> { config with p_min_grid = g }
  in
  match alpha_grid with None -> config | Some g -> { config with alpha_grid = g }

let train_args ?criterion ?p_min_grid ?alpha_grid ?lhs_candidates ?domains ~rng
    ~space ~response ~n () =
  let config =
    config_of_args ?criterion ?p_min_grid ?alpha_grid ?lhs_candidates ?domains
      ~rng ()
  in
  train ~config:{ config with Config.sample_size = n } ~space ~response ()

type step = {
  size : int;
  trained : trained;
  test_error : Stats.Error_metrics.t;
}

type history = { steps : step list; final : step }

let build_to_accuracy ?(config = Config.default) ~space ~response ~sizes
    ~test_points ~test_responses ~target_mean_pct () =
  if sizes = [] then
    Obs.Error.invalid_input ~where:"Build.build_to_accuracy"
      "empty size schedule";
  (* All sizes share one generator stream (resolved once), matching the
     pre-Config behaviour of threading a single stateful rng through. *)
  let config = Config.with_rng (Config.rng_of config) config in
  let sizes = List.sort_uniq compare sizes in
  let rec go acc = function
    | [] ->
        let steps = List.rev acc in
        { steps; final = List.hd acc }
    | n :: rest ->
        let trained =
          train ~config:(Config.with_sample_size n config) ~space ~response ()
        in
        let test_error =
          Predictor.errors_on trained.predictor ~points:test_points
            ~actual:test_responses
        in
        let step = { size = n; trained; test_error } in
        if test_error.Stats.Error_metrics.mean_pct <= target_mean_pct then
          { steps = List.rev (step :: acc); final = step }
        else go (step :: acc) rest
  in
  go [] sizes

let build_to_accuracy_args ?criterion ?p_min_grid ?alpha_grid ?lhs_candidates
    ?domains ~rng ~space ~response ~sizes ~test_points ~test_responses
    ~target_mean_pct () =
  let config =
    config_of_args ?criterion ?p_min_grid ?alpha_grid ?lhs_candidates ?domains
      ~rng ()
  in
  build_to_accuracy ~config ~space ~response ~sizes ~test_points
    ~test_responses ~target_mean_pct ()
