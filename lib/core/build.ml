module Design = Archpred_design
module Stats = Archpred_stats

type trained = {
  predictor : Predictor.t;
  sample : Design.Space.point array;
  sample_responses : float array;
  discrepancy : float;
  criterion : float;
  tune : Tune.result;
}

let train ?criterion ?p_min_grid ?alpha_grid ?(lhs_candidates = 100) ?domains
    ~rng ~space ~response ~n () =
  let plan =
    Design.Optimize.best_lhs ~kind:Design.Discrepancy.Star
      ~candidates:lhs_candidates ?domains rng space ~n
  in
  let sample = plan.Design.Optimize.points in
  let sample_responses = Response.evaluate_many ?domains response sample in
  let tune =
    Tune.tune ?criterion ?p_min_grid ?alpha_grid ?domains
      ~dim:(Design.Space.dimension space) ~points:sample
      ~responses:sample_responses ()
  in
  let predictor =
    {
      Predictor.space;
      network = tune.Tune.selection.Archpred_rbf.Selection.network;
      tree = Some tune.Tune.tree;
      p_min = tune.Tune.p_min;
      alpha = tune.Tune.alpha;
    }
  in
  {
    predictor;
    sample;
    sample_responses;
    discrepancy = plan.Design.Optimize.discrepancy;
    criterion = tune.Tune.criterion;
    tune;
  }

type step = {
  size : int;
  trained : trained;
  test_error : Stats.Error_metrics.t;
}

type history = { steps : step list; final : step }

let build_to_accuracy ?criterion ?p_min_grid ?alpha_grid ?lhs_candidates
    ?domains ~rng ~space ~response ~sizes ~test_points ~test_responses
    ~target_mean_pct () =
  if sizes = [] then invalid_arg "Build.build_to_accuracy: empty schedule";
  let sizes = List.sort_uniq compare sizes in
  let rec go acc = function
    | [] ->
        let steps = List.rev acc in
        { steps; final = List.hd acc }
    | n :: rest ->
        let trained =
          train ?criterion ?p_min_grid ?alpha_grid ?lhs_candidates ?domains
            ~rng ~space ~response ~n ()
        in
        let test_error =
          Predictor.errors_on trained.predictor ~points:test_points
            ~actual:test_responses
        in
        let step = { size = n; trained; test_error } in
        if test_error.Stats.Error_metrics.mean_pct <= target_mean_pct then
          { steps = List.rev (step :: acc); final = step }
        else go (step :: acc) rest
  in
  go [] sizes
