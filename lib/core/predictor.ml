module Space = Archpred_design.Space
module Network = Archpred_rbf.Network
module Error_metrics = Archpred_stats.Error_metrics

type t = {
  space : Space.t;
  network : Network.t;
  packed : Network.packed;
  tree : Archpred_regtree.Tree.t option;
  p_min : int;
  alpha : float;
}

let make ~space ~network ?tree ~p_min ~alpha () =
  { space; network; packed = Network.pack network; tree; p_min; alpha }

let predict t point =
  Space.validate_point t.space point;
  Network.eval t.network point

let predict_natural t values = predict t (Space.encode t.space values)
let n_centers t = Array.length t.network.Network.centers

let predict_batch ?(obs = Archpred_obs.null) ?cache t points =
  let n = Array.length points in
  Space.validate_points t.space points;
  Archpred_obs.incr obs "predict.batches";
  Archpred_obs.count obs "predict.points" n;
  match cache with
  | None -> Network.eval_batch t.packed points
  | Some c ->
      (* probe the whole batch first, kernel-evaluate only the misses,
         then commit the missed keys in one pass — the memo never costs
         per-point bookkeeping on the hit path *)
      let out = Array.make n 0. in
      let miss = Array.make n 0 in
      let k = Memo.probe_batch c points ~out ~miss in
      if k > 0 then begin
        let vals =
          Network.eval_batch t.packed
            (Array.init k (fun j -> points.(miss.(j))))
        in
        for j = 0 to k - 1 do
          out.(miss.(j)) <- vals.(j)
        done;
        Memo.commit c out
      end;
      out

let predict_natural_batch ?obs ?cache t values =
  predict_batch ?obs ?cache t (Array.map (Space.encode t.space) values)

let errors_on t ~points ~actual =
  let predicted = predict_batch t points in
  Error_metrics.evaluate ~actual ~predicted
