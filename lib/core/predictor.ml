module Space = Archpred_design.Space
module Network = Archpred_rbf.Network
module Error_metrics = Archpred_stats.Error_metrics

type t = {
  space : Space.t;
  network : Network.t;
  packed : Network.packed;
  tree : Archpred_regtree.Tree.t option;
  p_min : int;
  alpha : float;
}

let make ~space ~network ?tree ~p_min ~alpha () =
  { space; network; packed = Network.pack network; tree; p_min; alpha }

let predict t point =
  Space.validate_point t.space point;
  Network.eval t.network point

let predict_natural t values = predict t (Space.encode t.space values)
let n_centers t = Array.length t.network.Network.centers

let predict_batch ?(obs = Archpred_obs.null) ?cache t points =
  let n = Array.length points in
  Space.validate_points t.space points;
  Archpred_obs.incr obs "predict.batches";
  Archpred_obs.count obs "predict.points" n;
  match cache with
  | None -> Network.eval_batch t.packed points
  | Some c ->
      let out = Array.make n 0. in
      let keys = Array.make n None in
      let miss_rev = ref [] in
      Array.iteri
        (fun i p ->
          match Memo.lookup c p with
          | Memo.Hit v -> out.(i) <- v
          | Memo.Miss k ->
              keys.(i) <- Some k;
              miss_rev := i :: !miss_rev
          | Memo.Bypass -> miss_rev := i :: !miss_rev)
        points;
      (match !miss_rev with
      | [] -> ()
      | miss ->
          let idx = Array.of_list (List.rev miss) in
          let vals =
            Network.eval_batch t.packed (Array.map (fun i -> points.(i)) idx)
          in
          Array.iteri
            (fun pos i ->
              out.(i) <- vals.(pos);
              match keys.(i) with
              | Some k -> Memo.insert c k vals.(pos)
              | None -> ())
            idx);
      out

let predict_natural_batch ?obs ?cache t values =
  predict_batch ?obs ?cache t (Array.map (Space.encode t.space) values)

let errors_on t ~points ~actual =
  let predicted = predict_batch t points in
  Error_metrics.evaluate ~actual ~predicted
