module Stats = Archpred_stats
module Rbf = Archpred_rbf
module Json = Archpred_obs.Json

let schema_version = 1

let git_describe () =
  match Unix.open_process_in "git describe --always --dirty 2>/dev/null" with
  | exception Unix.Unix_error (_, _, _) -> "unknown"
  | ic ->
      let line = try Some (input_line ic) with End_of_file -> None in
      ignore (Unix.close_process_in ic);
      (match line with
      | Some l when String.trim l <> "" -> String.trim l
      | _ -> "unknown")

let metadata () =
  [
    ("domains", Json.Int (Stats.Parallel.default_domains ()));
    ("git_describe", Json.String (git_describe ()));
    ("simd", Json.String (Rbf.Batch_kernel.simd_level ()));
  ]

let envelope ~schema =
  ("schema", Json.String schema)
  :: ("schema_version", Json.Int schema_version)
  :: metadata ()

let obj ~schema fields = Json.Obj (envelope ~schema @ fields)

let preserved ~path keys =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> []
  | text -> (
      match Json.of_string text with
      | Error _ -> []
      | Ok j ->
          List.filter_map
            (fun key ->
              match Json.member key j with
              | Some v -> Some (key, v)
              | None -> None)
            keys)

let write ~path ~schema fields =
  (* Serialise (and stamp [git_describe]) before touching [path]:
     truncating a tracked report first would self-stamp it "-dirty". *)
  let payload = Json.to_string (obj ~schema fields) in
  let oc = open_out path in
  output_string oc payload;
  output_char oc '\n';
  close_out oc
