(** The batched-simulation throughput record behind [bench --sim].

    Simulates a deterministic spread of processor configurations — every
    cache-replacement policy represented — over one decoded workload
    trace, through the sequential reference ({!Archpred_sim.Processor.run},
    one full decode-and-walk per config) and the batched engine
    ({!Archpred_sim.Batch}), and reports per-config simulation rates and
    the aggregate batching speedup.  Every batched result is checked
    bit-identical against its sequential reference; the [sim] section of
    [BENCH_parallel.json] is the committed record. *)

type rate = {
  name : string;  (** ["config_NN"], the index into the spread *)
  policy : string;  (** replacement policy, {!Archpred_sim.Cache.Policy} *)
  cpi : float;
  inst_per_sec : float;  (** sequential-reference simulation rate *)
}

type speedup = {
  batch : int;  (** configs simulated together *)
  sequential_s : float;  (** summed [Processor.run] time of those configs *)
  batched_s : float;  (** one [Batch.run_plan] over them *)
  speedup : float;  (** [sequential_s /. batched_s] *)
}

type result = {
  trace_length : int;
  n_configs : int;
  rates : rate list;
  speedups : speedup list;
  bit_identical : bool;
      (** every batched result matched its sequential reference bitwise *)
}

val configs : int -> Archpred_sim.Config.t array
(** The deterministic configuration spread ([n] entries); cycles through
    all four replacement policies and a range of pipeline, window and
    cache shapes. *)

val run :
  ?trace_length:int -> ?n_configs:int -> ?batches:int list -> unit -> result
(** Measure (defaults: 20_000-instruction mcf trace, 16 configs, batch
    sizes [[1; 4; 16]]).  The simulated values are deterministic; only
    the timings vary run to run.  Raises [Archpred (Invalid_input _)] on
    a degenerate budget or a batch size outside [[1, n_configs]]. *)

val json_of_result : result -> Archpred_obs.Json.t
(** The [sim] section payload. *)

val record : ?path:string -> result -> unit
(** Merge the [sim] section into the report at [path] (default
    [BENCH_parallel.json]), preserving the micro-benchmark [results]
    section if one is present. *)
