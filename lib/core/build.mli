(** BuildRBFmodel — the paper's model-construction procedure (section 1).

    One {!train} call performs steps 2–4 for a fixed sample size: draw the
    best-of-N latin hypercube sample, obtain responses (simulate), tune
    (p_min, alpha) and select RBF centers by AICc, and fit the weights.
    {!build_to_accuracy} is the full iterative procedure (steps 2–6):
    train at increasing sample sizes, estimating accuracy after each on an
    independent random test set, until the target accuracy is reached or
    the size schedule is exhausted.

    Both are configured by a {!Config.t} record (re-exported here as
    [Build.Config]). *)

module Config = Config

type trained = {
  predictor : Predictor.t;
  sample : Archpred_design.Space.point array;
  sample_responses : float array;
  discrepancy : float;  (** L2-star discrepancy of the chosen sample *)
  criterion : float;  (** AICc of the selected model *)
  tune : Tune.result;
}

val train :
  ?config:Config.t ->
  space:Archpred_design.Space.t ->
  response:Response.t ->
  unit ->
  trained
(** Train a model on a [config.sample_size]-point sample of [space].
    [config.lhs_candidates] latin hypercube samples are scored by L2-star
    discrepancy and the best is simulated.  [config.domains] reaches every
    parallel stage — candidate scoring, simulation, and the tuning grid —
    and the trained predictor is identical for every value of it, and for
    any observability sink.  Records the ["build.train"] span with
    ["build.sample"], ["build.simulate"] and (via {!Tune.tune})
    ["build.tune"] stages on [config.obs], and samples the
    ["pool.queue_depth"] gauge.  Raises [Archpred (Invalid_input _)] on an
    invalid configuration ({!Config.validate}).

    {b Crash safety.}  With [config.checkpoint] set, every completed
    simulation streams to an append-only journal ({!Checkpoint}); a
    restarted call with the same configuration replays the journal's
    valid records, drops the torn tail, and re-simulates only the missing
    design points — the final model is bit-identical
    ({!Persist.to_string}) to an uninterrupted run, at any domain count.

    {b Worker fault isolation.}  Each simulation task is retried up to
    [config.task_retries] times (optionally under
    [config.task_deadline]); design points that keep failing are
    collected — after every completed point is journaled — into one
    [Archpred (Infeasible _)] instead of poisoning the worker pool.  The
    stage's retry and failure counts flow into [config.obs] as the
    ["pool.retries"] and ["pool.failed_tasks"] counters.

    {b Batched simulation.}  When the response carries a batched
    evaluator ({!Response.t.eval_many} — the simulator responses do) and
    [config.sim_batch > 1], the simulation stage runs missing points in
    [sim_batch]-sized fan-outs through {!Archpred_sim.Batch}: the trace
    is decoded once and shared across configurations.  The batched engine
    is bit-identical to [Processor.run], so the trained model does not
    depend on [sim_batch], and journals written by either path replay
    into the other. *)

type step = {
  size : int;
  trained : trained;
  test_error : Archpred_stats.Error_metrics.t;
}

type history = {
  steps : step list;  (** in increasing-size order *)
  final : step;  (** the last (or first sufficiently accurate) step *)
}

val build_to_accuracy :
  ?config:Config.t ->
  space:Archpred_design.Space.t ->
  response:Response.t ->
  sizes:int list ->
  test_points:Archpred_design.Space.point array ->
  test_responses:float array ->
  target_mean_pct:float ->
  unit ->
  history
(** Run the procedure over the ascending [sizes] schedule
    ([config.sample_size] is ignored), stopping early once the mean test
    error falls at or below [target_mean_pct] percent.  Every size draws
    from one shared generator stream resolved once from [config].  With
    [config.checkpoint] set, each size journals to its own sidecar
    ([path.n<size>]).  Raises [Archpred (Invalid_input _)] on an empty
    size schedule.

    {b Streaming refit.}  With [config.stream_refit] the schedule departs
    from the paper's redraw-per-size procedure: one LHS campaign is run
    at the largest size, each step's sample is the prefix of that nested
    sample, only the new rows are simulated, and the tuning grid is
    extended by rank-1 moment pushes ({!Refit}) instead of refit from
    scratch — with a periodic from-scratch cross-check every
    [config.refit_full_every] steps.  Each step's [trained.discrepancy]
    is then the discrepancy of the full nested sample, and the single
    journal is suffixed [.stream] rather than [.n<size>].  The streamed
    model is deterministic in the configuration — identical at any
    domain or worker-process count — but (by design) differs from the
    default procedure's model. *)
