module Design = Archpred_design

(* Quantized-key LRU cache over the design grid.

   The design space has finitely many levels per axis, so an on-grid
   point [u] has an exact integer representation: the level index
   [k = round (u * (l - 1))] per dimension.  The per-axis indices are
   packed into a single immediate integer (each axis contributes
   [ceil (log2 l)] bits), which is the cache key.

   Bit-identity guard: a key is only issued when the canonical grid
   coordinate [k /. (l - 1)] equals the query coordinate *bitwise*
   (this matches Parameter.snap and Parameter.level_coordinates, which
   produce grid points exactly that way).  Off-grid queries — or grids
   whose packed key would not fit the 62-bit budget — are reported as
   [Bypass] and evaluated directly, never cached, so a cached predictor
   can never return a value the scalar path would not have produced for
   the same float input.

   The structure is engineered for the serving hit path, which has to
   undercut the ~130 ns/pt batched kernel to be worth fronting it:

   - keys are immediate ints, so matching a node is one integer
     compare — no string hashing, no array walk, no allocation;
   - the index is a private open-addressed table (Fibonacci hashing,
     linear probing, backward-shift deletion), at most quarter-full;
   - the canonical-coordinate check reads a precomputed per-axis table
     of grid coordinates and compares with a native float instruction
     (plus a reciprocal sign test at level 0, where -0.0 would
     otherwise alias +0.0) — no division, no external calls;
   - recency is a circular doubly-linked list through a sentinel, so a
     hit's refresh is six pointer stores.

   Eviction is deterministic: least recently used, decided solely by
   the recency list; probe order in the table is never observable. *)

type node = {
  n_packed : int;  (* -1 marks the sentinel / empty slot *)
  mutable n_value : float;
  mutable n_prev : node;  (* toward MRU; sentinel.n_next is the MRU *)
  mutable n_next : node;  (* toward LRU; sentinel.n_prev is the LRU *)
}

type key = int

type t = {
  level_counts : int array;
  canon : float array array;
      (* canon.(i).(k) = k /. (level_counts.(i) - 1): the bitwise-exact
         grid coordinate per axis and level, precomputed so the hot
         probe does one load + one float compare per axis instead of a
         division and two external calls *)
  scale : float array;  (* float_of_int (level_counts.(i) - 1) *)
  shifts : int array;  (* bit offset of each axis inside a packed key *)
  widths : int array;  (* bits per axis *)
  gridable : bool;  (* the packed key fits the 62-bit budget *)
  capacity : int;
  slots : node array;  (* open-addressed; t.sentinel marks an empty slot *)
  hash_shift : int;  (* Fibonacci hashing: slot = (p * phi) lsr hash_shift *)
  n_slots : int;
  sentinel : node;
  mutable size : int;
  obs : Archpred_obs.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bypasses : int;
  mutable scratch_packed : int;  (* key of the last successful quantize *)
  mutable pending : (int * key) list;  (* cacheable misses of the last probe *)
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;
  size : int;
  capacity : int;
}

type lookup = Hit of float | Miss of key | Bypass

let max_packed_bits = 62 (* keep packed keys non-negative immediates *)

let bits_for n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(obs = Archpred_obs.null) ~capacity ~space ~sample_size () =
  if capacity < 1 then invalid_arg "Memo.create: capacity < 1";
  let level_counts =
    Array.map
      (fun p -> Design.Parameter.level_count p ~sample_size)
      (Design.Space.parameters space)
  in
  let widths = Array.map (fun lc -> bits_for (lc - 1)) level_counts in
  let total_bits = Array.fold_left ( + ) 0 widths in
  let gridable = total_bits <= max_packed_bits in
  let shifts =
    let off = ref 0 in
    Array.map
      (fun w ->
        let s = !off in
        off := !off + w;
        s)
      widths
  in
  let canon =
    if not gridable then [||]
    else
      Array.map
        (fun lc ->
          let last = float_of_int (lc - 1) in
          Array.init lc (fun k -> float_of_int k /. last))
        level_counts
  in
  let rec sentinel =
    { n_packed = -1; n_value = 0.; n_prev = sentinel; n_next = sentinel }
  in
  (* load factor stays under 1/4 even at full capacity, keeping probe
     chains short; the table never grows or shrinks *)
  let n_slots =
    let rec up n = if n >= 4 * capacity then n else up (2 * n) in
    up 16
  in
  {
    level_counts;
    canon;
    scale = Array.map (fun lc -> float_of_int (lc - 1)) level_counts;
    shifts;
    widths;
    gridable;
    capacity;
    slots = Array.make n_slots sentinel;
    hash_shift = 63 - bits_for (n_slots - 1);
    n_slots;
    sentinel;
    size = 0;
    obs;
    hits = 0;
    misses = 0;
    evictions = 0;
    bypasses = 0;
    scratch_packed = -1;
    pending = [];
  }

(* Quantize [point] into [t.scratch_packed], valid until the next call.
   Returns false for anything that is not bitwise on-grid. *)
let quantize_into t point =
  let dim = Array.length t.level_counts in
  if (not t.gridable) || Array.length point <> dim then false
  else begin
    let ok = ref true in
    let p = ref 0 in
    let i = ref 0 in
    while !ok && !i < dim do
      let u = Array.unsafe_get point !i in
      (* u >= 0 on the grid, so round-half-up truncation equals rounding;
         a marginal value that rounds differently just fails the
         canonical compare below and bypasses — it can never mis-key.
         NaN converts out of range and is rejected. *)
      let idx = int_of_float ((u *. Array.unsafe_get t.scale !i) +. 0.5) in
      let canon_i = Array.unsafe_get t.canon !i in
      if
        idx >= 0
        && idx < Array.length canon_i
        (* native float compare: true only when u is numerically the
           canonical grid coordinate; the reciprocal test rejects -0.0
           (which compares equal to canon 0.0 but is not bitwise it)
           and only ever runs at level 0 *)
        && Array.unsafe_get canon_i idx = u
        && (idx <> 0 || 1. /. u > 0.)
      then begin
        p := !p lor (idx lsl Array.unsafe_get t.shifts !i);
        incr i
      end
      else ok := false
    done;
    t.scratch_packed <- !p;
    !ok
  end

(* Fibonacci hashing: multiply by an odd 63-bit constant and keep the
   high bits, which mix every key bit into the slot index. *)
let home t packed = (packed * 0x2545F4914F6CDD1D) lsr t.hash_shift land (t.n_slots - 1)

(* Probe for the node with key [packed]; [t.sentinel] if absent.  The
   table is at most quarter-full, so an empty slot always stops the
   scan. *)
let find t packed =
  let mask = t.n_slots - 1 in
  let i = ref (home t packed) in
  let found = ref t.sentinel in
  let scanning = ref true in
  while !scanning do
    let e = Array.unsafe_get t.slots !i in
    if e.n_packed = packed then begin
      found := e;
      scanning := false
    end
    else if e == t.sentinel then scanning := false
    else i := (!i + 1) land mask
  done;
  !found

let place t node =
  let mask = t.n_slots - 1 in
  let i = ref (home t node.n_packed) in
  while Array.unsafe_get t.slots !i != t.sentinel do
    i := (!i + 1) land mask
  done;
  t.slots.(!i) <- node

(* Backward-shift deletion: close the probe chain so no tombstones
   accumulate (the cache evicts on every insert once warm). *)
let remove_table t node =
  let mask = t.n_slots - 1 in
  let i = ref (home t node.n_packed) in
  while Array.unsafe_get t.slots !i != node do
    i := (!i + 1) land mask
  done;
  let j = ref !i in
  let k = ref !i in
  let shifting = ref true in
  while !shifting do
    k := (!k + 1) land mask;
    let e = Array.unsafe_get t.slots !k in
    if e == t.sentinel then begin
      t.slots.(!j) <- t.sentinel;
      shifting := false
    end
    else begin
      let h = home t e.n_packed in
      if (!k - h) land mask >= (!k - !j) land mask then begin
        t.slots.(!j) <- e;
        j := !k
      end
    end
  done

(* recency-list surgery: pure pointer stores on the circular list *)

let unlink node =
  node.n_prev.n_next <- node.n_next;
  node.n_next.n_prev <- node.n_prev

let push_front t node =
  let h = t.sentinel.n_next in
  node.n_prev <- t.sentinel;
  node.n_next <- h;
  h.n_prev <- node;
  t.sentinel.n_next <- node

let lookup t point =
  if not (quantize_into t point) then begin
    t.bypasses <- t.bypasses + 1;
    Archpred_obs.incr t.obs "memo.bypasses";
    Bypass
  end
  else
    let node = find t t.scratch_packed in
    if node != t.sentinel then begin
      t.hits <- t.hits + 1;
      Archpred_obs.incr t.obs "memo.hits";
      unlink node;
      push_front t node;
      Hit node.n_value
    end
    else begin
      t.misses <- t.misses + 1;
      Archpred_obs.incr t.obs "memo.misses";
      Miss t.scratch_packed
    end

let insert t key value =
  let existing = find t key in
  if existing != t.sentinel then begin
    (* refresh: same grid point always maps to the same model value,
       but move it to the front and keep the latest value anyway *)
    existing.n_value <- value;
    unlink existing;
    push_front t existing
  end
  else begin
    if t.size >= t.capacity then begin
      let lru = t.sentinel.n_prev in
      if lru != t.sentinel then begin
        unlink lru;
        remove_table t lru;
        t.size <- t.size - 1;
        t.evictions <- t.evictions + 1;
        Archpred_obs.incr t.obs "memo.evictions"
      end
    end;
    let rec node =
      { n_packed = key; n_value = value; n_prev = node; n_next = node }
    in
    place t node;
    push_front t node;
    t.size <- t.size + 1
  end

(* ------------------------------------------------------------------ *)
(* Batched probing                                                    *)
(* ------------------------------------------------------------------ *)

let probe_batch t points ~out ~miss =
  let n = Array.length points in
  if Array.length out < n || Array.length miss < n then
    invalid_arg "Memo.probe_batch: out/miss shorter than the batch";
  t.pending <- [];
  let hits = ref 0 and misses = ref 0 and bypasses = ref 0 in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if not (quantize_into t (Array.unsafe_get points i)) then begin
      incr bypasses;
      Array.unsafe_set miss !m i;
      incr m
    end
    else
      let node = find t t.scratch_packed in
      if node != t.sentinel then begin
        incr hits;
        unlink node;
        push_front t node;
        Array.unsafe_set out i node.n_value
      end
      else begin
        incr misses;
        (* archpred-analyze: allow hot-alloc -- miss path only; the cons+pair is amortized by the kernel evaluation the miss already pays for *)
        t.pending <- (i, t.scratch_packed) :: t.pending;
        Array.unsafe_set miss !m i;
        incr m
      end
  done;
  t.hits <- t.hits + !hits;
  t.misses <- t.misses + !misses;
  t.bypasses <- t.bypasses + !bypasses;
  if !hits > 0 then Archpred_obs.count t.obs "memo.hits" !hits;
  if !misses > 0 then Archpred_obs.count t.obs "memo.misses" !misses;
  if !bypasses > 0 then Archpred_obs.count t.obs "memo.bypasses" !bypasses;
  !m

let commit t values =
  (* [pending] is in reverse stream order; insert in stream order so the
     recency list ends up exactly as the scalar lookup/insert sequence
     would leave it *)
  (* archpred-analyze: allow hot-alloc -- one closure per batch, not per point; rewriting as a loop would need a mutable cursor for no measured gain *)
  List.iter (fun (i, key) -> insert t key values.(i)) (List.rev t.pending);
  t.pending <- []

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    bypasses = t.bypasses;
    size = t.size;
    capacity = t.capacity;
  }

let unpack t packed =
  Array.init (Array.length t.level_counts) (fun i ->
      (packed lsr t.shifts.(i)) land ((1 lsl t.widths.(i)) - 1))

let contents t =
  let rec walk acc node =
    if node == t.sentinel then List.rev acc
    else walk ((unpack t node.n_packed, node.n_value) :: acc) node.n_next
  in
  walk [] t.sentinel.n_next
