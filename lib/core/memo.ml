module Design = Archpred_design

(* Quantized-key LRU cache over the design grid.

   The design space has finitely many levels per axis, so an on-grid
   point [u] has an exact integer representation: the level index
   [k = round (u * (l - 1))] per dimension.  Keys are those index
   tuples, encoded as fixed-width byte strings.

   Bit-identity guard: a key is only issued when reconstructing the
   canonical coordinate [k /. (l - 1)] from the index reproduces the
   query coordinate *bitwise* (this matches Parameter.snap and
   Parameter.level_coordinates, which produce grid points exactly that
   way).  Off-grid queries — or grids too fine for the 16-bit-per-axis
   key — are reported as [Bypass] and evaluated directly, never cached,
   so a cached predictor can never return a value the scalar path
   would not have produced for the same float input.

   Eviction is deterministic: a doubly-linked recency list, evicting
   the least recently used entry; no hashing order is ever observed. *)

type node = {
  n_key : string;
  n_levels : int array;
  mutable n_value : float;
  mutable n_prev : node option;  (* toward MRU *)
  mutable n_next : node option;  (* toward LRU *)
}

type key = { k_str : string; k_levels : int array }

type t = {
  level_counts : int array;
  capacity : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  obs : Archpred_obs.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable bypasses : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bypasses : int;
  size : int;
  capacity : int;
}

type lookup = Hit of float | Miss of key | Bypass

let max_level = 0xffff (* two bytes per axis in the encoded key *)

let create ?(obs = Archpred_obs.null) ~capacity ~space ~sample_size () =
  if capacity < 1 then invalid_arg "Memo.create: capacity < 1";
  let level_counts =
    Array.map
      (fun p -> Design.Parameter.level_count p ~sample_size)
      (Design.Space.parameters space)
  in
  {
    level_counts;
    capacity;
    table = Hashtbl.create (min capacity 4096);
    head = None;
    tail = None;
    size = 0;
    obs;
    hits = 0;
    misses = 0;
    evictions = 0;
    bypasses = 0;
  }

let key_of t point =
  let dim = Array.length t.level_counts in
  if Array.length point <> dim then None
  else begin
    let levels = Array.make dim 0 in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < dim do
      let lc = t.level_counts.(!k) in
      let u = point.(!k) in
      let last = float_of_int (lc - 1) in
      let idx = int_of_float (Float.round (u *. last)) in
      if
        idx < 0 || idx >= lc
        || lc - 1 > max_level
        (* canonical-coordinate check: cache only what the grid
           reproduces bitwise *)
        || not (Int64.equal
                  (Int64.bits_of_float (float_of_int idx /. last))
                  (Int64.bits_of_float u))
      then ok := false
      else begin
        levels.(!k) <- idx;
        incr k
      end
    done;
    if not !ok then None
    else begin
      let b = Bytes.create (2 * dim) in
      Array.iteri
        (fun i idx ->
          Bytes.unsafe_set b (2 * i) (Char.unsafe_chr (idx land 0xff));
          Bytes.unsafe_set b ((2 * i) + 1) (Char.unsafe_chr ((idx lsr 8) land 0xff)))
        levels;
      Some { k_str = Bytes.unsafe_to_string b; k_levels = levels }
    end
  end

(* recency-list surgery *)

let unlink t node =
  (match node.n_prev with
  | Some p -> p.n_next <- node.n_next
  | None -> t.head <- node.n_next);
  (match node.n_next with
  | Some nx -> nx.n_prev <- node.n_prev
  | None -> t.tail <- node.n_prev);
  node.n_prev <- None;
  node.n_next <- None

let push_front t node =
  node.n_prev <- None;
  node.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some node | None -> ());
  t.head <- Some node;
  match t.tail with None -> t.tail <- Some node | Some _ -> ()

let lookup t point =
  match key_of t point with
  | None ->
      t.bypasses <- t.bypasses + 1;
      Archpred_obs.incr t.obs "memo.bypasses";
      Bypass
  | Some key -> (
      match Hashtbl.find_opt t.table key.k_str with
      | Some node ->
          t.hits <- t.hits + 1;
          Archpred_obs.incr t.obs "memo.hits";
          unlink t node;
          push_front t node;
          Hit node.n_value
      | None ->
          t.misses <- t.misses + 1;
          Archpred_obs.incr t.obs "memo.misses";
          Miss key)

let insert t key value =
  match Hashtbl.find_opt t.table key.k_str with
  | Some node ->
      (* refresh: same grid point always maps to the same model value,
         but move it to the front and keep the latest value anyway *)
      node.n_value <- value;
      unlink t node;
      push_front t node
  | None ->
      if t.size >= t.capacity then begin
        match t.tail with
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.table lru.n_key;
            t.size <- t.size - 1;
            t.evictions <- t.evictions + 1;
            Archpred_obs.incr t.obs "memo.evictions"
        | None -> ()
      end;
      let node =
        {
          n_key = key.k_str;
          n_levels = Array.copy key.k_levels;
          n_value = value;
          n_prev = None;
          n_next = None;
        }
      in
      Hashtbl.replace t.table key.k_str node;
      push_front t node;
      t.size <- t.size + 1

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    bypasses = t.bypasses;
    size = t.size;
    capacity = t.capacity;
  }

let contents t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((Array.copy node.n_levels, node.n_value) :: acc) node.n_next
  in
  walk [] t.head
