module Tree = Archpred_regtree.Tree
module Rbf = Archpred_rbf
module Parallel = Archpred_stats.Parallel
module Obs = Archpred_obs

type result = {
  p_min : int;
  alpha : float;
  criterion : float;
  tree : Tree.t;
  selection : Rbf.Selection.result;
}

let default_p_min_grid = Config.default_p_min_grid
let default_alpha_grid = Config.default_alpha_grid

(* The canonical grid-cell order — p_min outer, alpha inner — is the serial
   iteration order every consumer (the grid walk below, the streaming refit,
   the sharded tune stage) must share: the arg-min keeps the earliest cell
   on ties, so the cell *order* is part of the model's determinism
   contract, not just the cell set. *)
let cells config =
  let { Config.p_min_grid; alpha_grid; _ } = config in
  if p_min_grid = [] || alpha_grid = [] then
    Obs.Error.invalid_input ~where:"Tune.cells" "empty grid";
  Array.of_list
    (List.concat_map
       (fun p_min -> List.map (fun alpha -> (p_min, alpha)) alpha_grid)
       p_min_grid)

let eval_cell ?(obs = Obs.null) ~criterion ~tree ~points ~responses ~alpha () =
  let candidates = Rbf.Tree_centers.of_tree ~alpha tree in
  Rbf.Selection.select ~obs ~criterion ~tree ~candidates ~points ~responses ()

let best_of results =
  let best = ref results.(0) in
  for i = 1 to Array.length results - 1 do
    if results.(i).criterion < !best.criterion then best := results.(i)
  done;
  !best

let tune ?(config = Config.default) ~dim ~points ~responses () =
  let { Config.criterion; p_min_grid; alpha_grid; domains; obs; _ } = config in
  if p_min_grid = [] || alpha_grid = [] then
    Obs.Error.invalid_input ~where:"Tune.tune" "empty grid";
  Obs.with_span obs "build.tune" @@ fun () ->
  (* One tree per p_min, built once and shared read-only by every alpha
     cell of its row. *)
  let p_mins = Array.of_list p_min_grid in
  let trees =
    Parallel.map ?domains
      (fun p_min -> Tree.build ~obs ~p_min ~dim ~points ~responses ())
      p_mins
  in
  let tree_for p_min =
    let rec find i = if p_mins.(i) = p_min then trees.(i) else find (i + 1) in
    find 0
  in
  (* Fan the full p_min x alpha grid over the pool in canonical cell order;
     each cell's selection is deterministic, so the arg-min — earliest cell
     on ties — matches the serial grid walk bit for bit, whatever the
     domain count. *)
  let grid = Array.map (fun (p, a) -> (p, tree_for p, a)) (cells config) in
  Obs.count obs "tune.cells" (Array.length grid);
  let results =
    Parallel.map ?domains
      (fun (p_min, tree, alpha) ->
        let selection =
          eval_cell ~obs ~criterion ~tree ~points ~responses ~alpha ()
        in
        {
          p_min;
          alpha;
          criterion = selection.Rbf.Selection.criterion;
          tree;
          selection;
        })
      grid
  in
  best_of results
