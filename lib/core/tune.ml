module Tree = Archpred_regtree.Tree
module Rbf = Archpred_rbf
module Parallel = Archpred_stats.Parallel
module Obs = Archpred_obs

type result = {
  p_min : int;
  alpha : float;
  criterion : float;
  tree : Tree.t;
  selection : Rbf.Selection.result;
}

let default_p_min_grid = Config.default_p_min_grid
let default_alpha_grid = Config.default_alpha_grid

let tune ?(config = Config.default) ~dim ~points ~responses () =
  let { Config.criterion; p_min_grid; alpha_grid; domains; obs; _ } = config in
  if p_min_grid = [] || alpha_grid = [] then
    Obs.Error.invalid_input ~where:"Tune.tune" "empty grid";
  Obs.with_span obs "build.tune" @@ fun () ->
  (* One tree per p_min, built once and shared read-only by every alpha
     cell of its row. *)
  let p_mins = Array.of_list p_min_grid in
  let trees =
    Parallel.map ?domains
      (fun p_min -> Tree.build ~obs ~p_min ~dim ~points ~responses ())
      p_mins
  in
  (* Fan the full p_min x alpha grid over the pool.  Cells are listed in
     the serial iteration order (p_min outer, alpha inner) and each cell's
     selection is deterministic, so the arg-min below — which keeps the
     earliest cell on ties — matches the serial grid walk bit for bit,
     whatever the domain count. *)
  let cells =
    Array.concat
      (List.map
         (fun i ->
           Array.of_list
             (List.map (fun alpha -> (p_mins.(i), trees.(i), alpha)) alpha_grid))
         (List.init (Array.length p_mins) Fun.id))
  in
  Obs.count obs "tune.cells" (Array.length cells);
  let results =
    Parallel.map ?domains
      (fun (p_min, tree, alpha) ->
        let candidates = Rbf.Tree_centers.of_tree ~alpha tree in
        let selection =
          Rbf.Selection.select ~obs ~criterion ~tree ~candidates ~points
            ~responses ()
        in
        {
          p_min;
          alpha;
          criterion = selection.Rbf.Selection.criterion;
          tree;
          selection;
        })
      cells
  in
  let best = ref results.(0) in
  for i = 1 to Array.length results - 1 do
    if results.(i).criterion < !best.criterion then best := results.(i)
  done;
  !best
