module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares

type center = { c : float array; r : float array }

let check_center { c; r } =
  if Array.length c <> Array.length r then
    invalid_arg "Network: center/radius arity mismatch";
  Array.iter
    (fun radius ->
      if not (radius > 0.) then invalid_arg "Network: non-positive radius")
    r

(* The scalar reference path.  Two deliberate choices keep it bitwise
   reproducible by the batch kernel (Batch_kernel) on every instruction
   set: the distance uses a multiply by the reciprocal radius — the
   packed storage precomputes the identical [1. /. r] — and the
   exponential is the deterministic table-driven [Rbf_math.exp_neg]
   rather than libm's exp, whose last-ulp rounding varies across
   libms.  Division by r and multiplication by 1/r differ in the last
   ulp, so the two must never be mixed. *)
let basis { c; r } x =
  let n = Array.length c in
  if Array.length x <> n then invalid_arg "Network.basis: arity mismatch";
  let acc = ref 0. in
  for k = 0 to n - 1 do
    let d = (x.(k) -. c.(k)) *. (1. /. r.(k)) in
    acc := !acc +. (d *. d)
  done;
  Rbf_math.exp_neg !acc

type t = { centers : center array; weights : float array }

let eval t x =
  let acc = ref 0. in
  for j = 0 to Array.length t.centers - 1 do
    acc := !acc +. (t.weights.(j) *. basis t.centers.(j) x)
  done;
  !acc

type packed = Batch_kernel.t

let pack t =
  if Array.length t.centers = 0 then invalid_arg "Network.pack: no centers";
  Array.iter check_center t.centers;
  Batch_kernel.pack
    ~dim:(Array.length t.centers.(0).c)
    ~centers:(Array.map (fun ctr -> ctr.c) t.centers)
    ~radii:(Array.map (fun ctr -> ctr.r) t.centers)
    ~weights:t.weights

let eval_batch ?force_scalar packed points =
  Batch_kernel.eval_points ?force_scalar packed points

let eval_batch_fresh ?force_scalar packed points =
  Batch_kernel.eval_points_fresh ?force_scalar packed points

let design_matrix centers points =
  Matrix.init (Array.length points) (Array.length centers) (fun i j ->
      basis centers.(j) points.(i))

type fit_diagnostics = { rss : float; sigma2 : float; regularized : bool }

(* Deep tree nodes produce nearly coincident candidate centers, so the
   Gaussian design matrix can be severely ill-conditioned even when QR
   technically succeeds — yielding weight vectors in the millions whose
   cancellation is numerically fragile.  A small default ridge keeps the
   weights bounded and matches the jitter the subset scorer applies during
   selection. *)
let default_ridge = 1e-8

let fit ?(ridge = default_ridge) ~centers ~points ~responses () =
  if Array.length centers = 0 then invalid_arg "Network.fit: no centers";
  if Array.length points <> Array.length responses then
    invalid_arg "Network.fit: points/responses mismatch";
  if Array.length points < Array.length centers then
    invalid_arg "Network.fit: more centers than points";
  Array.iter check_center centers;
  let h = design_matrix centers points in
  let f =
    if ridge > 0. then Least_squares.fit_ridge h responses ~lambda:ridge
    else Least_squares.fit h responses
  in
  ( { centers; weights = f.Least_squares.coefficients },
    {
      rss = f.Least_squares.rss;
      sigma2 = f.Least_squares.sigma2;
      regularized = f.Least_squares.regularized;
    } )
