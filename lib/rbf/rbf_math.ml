(* Deterministic exp(-s) shared by the scalar reference path and the C
   batch kernel (rbf_kernel_stubs.c).

   The libm [exp] is correctly rounded on glibc but other libms (musl,
   macOS, mingw) round differently in the last ulp, and a C kernel
   calling libm from vectorised code could not reproduce OCaml's call
   sequence bit-for-bit anyway.  So both the OCaml scalar oracle and
   every C kernel path (scalar, AVX2, AVX-512) evaluate this exact
   operation sequence over the same tables; agreeing on each individual
   IEEE-754 operation makes the results bit-identical by construction.

   Algorithm: standard table-driven reduction with 64 subdivisions per
   octave.  For x = -s, write x = n*(ln2/64) + r with n an integer and
   |r| <= ln2/128, then

     exp(x) = 2^(n/64) * exp(r)
            = 2^(j/64) * 2^e * exp(r)        (n = 64e + j, 0 <= j < 64)

   with 2^(j/64) from a 64-entry table, 2^e from an exact power-of-two
   table, and exp(r) from a degree-4 polynomial (|r| is small enough
   that the truncation error is ~4e-14 relative).  ln2/64 is split into
   a high part with 20 trailing zero bits -- so n * hi is exact for all
   |n| < 2^19 reachable here -- plus a low correction, keeping the
   reduced argument accurate to ~1 ulp.

   The constants below are hex float literals so that the OCaml lexer
   and the C compiler produce the same bit patterns; they must match
   rbf_kernel_stubs.c exactly. *)

open Bigarray

type table = (float, float64_elt, c_layout) Array1.t

let invln2_64 = 0x1.71547652b82fep+6 (* 64 / ln 2 *)
let ln2_64_hi = 0x1.62e42fee00000p-7
let ln2_64_lo = 0x1.a39ef35793c76p-39

(* 2^(j/64), j = 0..63, correctly rounded (same values glibc's exp
   tables use).  Hardcoded rather than computed with [( ** )] so the
   table does not depend on the host's pow implementation. *)
let t2j_values =
  [|
    0x1p+0;               0x1.02c9a3e778061p+0; 0x1.059b0d3158574p+0;
    0x1.0874518759bc8p+0; 0x1.0b5586cf9890fp+0; 0x1.0e3ec32d3d1a2p+0;
    0x1.11301d0125b51p+0; 0x1.1429aaea92dep+0;  0x1.172b83c7d517bp+0;
    0x1.1a35beb6fcb75p+0; 0x1.1d4873168b9aap+0; 0x1.2063b88628cd6p+0;
    0x1.2387a6e756238p+0; 0x1.26b4565e27cddp+0; 0x1.29e9df51fdee1p+0;
    0x1.2d285a6e4030bp+0; 0x1.306fe0a31b715p+0; 0x1.33c08b26416ffp+0;
    0x1.371a7373aa9cbp+0; 0x1.3a7db34e59ff7p+0; 0x1.3dea64c123422p+0;
    0x1.4160a21f72e2ap+0; 0x1.44e086061892dp+0; 0x1.486a2b5c13cdp+0;
    0x1.4bfdad5362a27p+0; 0x1.4f9b2769d2ca7p+0; 0x1.5342b569d4f82p+0;
    0x1.56f4736b527dap+0; 0x1.5ab07dd485429p+0; 0x1.5e76f15ad2148p+0;
    0x1.6247eb03a5585p+0; 0x1.6623882552225p+0; 0x1.6a09e667f3bcdp+0;
    0x1.6dfb23c651a2fp+0; 0x1.71f75e8ec5f74p+0; 0x1.75feb564267c9p+0;
    0x1.7a11473eb0187p+0; 0x1.7e2f336cf4e62p+0; 0x1.82589994cce13p+0;
    0x1.868d99b4492edp+0; 0x1.8ace5422aa0dbp+0; 0x1.8f1ae99157736p+0;
    0x1.93737b0cdc5e5p+0; 0x1.97d829fde4e5p+0;  0x1.9c49182a3f09p+0;
    0x1.a0c667b5de565p+0; 0x1.a5503b23e255dp+0; 0x1.a9e6b5579fdbfp+0;
    0x1.ae89f995ad3adp+0; 0x1.b33a2b84f15fbp+0; 0x1.b7f76f2fb5e47p+0;
    0x1.bcc1e904bc1d2p+0; 0x1.c199bdd85529cp+0; 0x1.c67f12e57d14bp+0;
    0x1.cb720dcef9069p+0; 0x1.d072d4a07897cp+0; 0x1.d5818dcfba487p+0;
    0x1.da9e603db3285p+0; 0x1.dfc97337b9b5fp+0; 0x1.e502ee78b3ff6p+0;
    0x1.ea4afa2a490dap+0; 0x1.efa1bee615a27p+0; 0x1.f50765b6e454p+0;
    0x1.fa7c1819e90d8p+0;
  |]

let t2j =
  let a = Array1.create float64 c_layout 64 in
  Array.iteri (fun i v -> a.{i} <- v) t2j_values;
  a

(* 2^e for e = -1099 .. 1023 at offset e + 1099; [ldexp 1.] is exact,
   subnormals included, so this table is platform-independent. *)
let pow2_offset = 1099
let pow2_size = 2123

let pow2 =
  let a = Array1.create float64 c_layout pow2_size in
  for i = 0 to pow2_size - 1 do
    a.{i} <- Float.ldexp 1. (i - pow2_offset)
  done;
  a

(* |s| <= 708 keeps 2^e inside the table (|e| <= 1022) and n * hi
   exact; beyond it exp(-s) has over/underflowed anyway. *)
let exp_neg s =
  if not (Float.abs s <= 708.) then
    if Float.is_nan s then s else if s > 0. then 0. else infinity
  else begin
    let z = -.s *. invln2_64 in
    let n = int_of_float (z -. 0.5) in
    let nf = float_of_int n in
    let r = (-.s -. (nf *. ln2_64_hi)) -. (nf *. ln2_64_lo) in
    let j = n land 63 and e = n asr 6 in
    let p =
      1.
      +. (r
         *. (1.
            +. (r
               *. (0.5
                  +. (r
                     *. (0.16666666666666666 +. (r *. 0.041666666666666664)))))))
    in
    t2j.{j} *. p *. pow2.{e + pow2_offset}
  end
