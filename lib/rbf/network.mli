(** Radial basis function networks (section 2.3 of the paper).

    The network computes [f(x) = sum_j w_j h_j(x)] (eq. 1) with Gaussian
    basis functions

    {v h(x) = exp(- sum_k (x_k - c_k)^2 / r_k^2) v}

    (eq. 2), each characterised by a center [c] and a per-dimension radius
    vector [r].  Given fixed centers, the weights are linear parameters,
    fitted by least squares on the training sample. *)

type center = {
  c : float array;  (** position in normalised design space *)
  r : float array;  (** per-dimension radii; all must be positive *)
}

val basis : center -> float array -> float
(** [basis ctr x] is the Gaussian response of eq. 2. Raises
    [Invalid_argument] on arity mismatch. *)

type t = {
  centers : center array;
  weights : float array;
}

val eval : t -> float array -> float
(** Network response at a point (eq. 1).  This scalar path is the
    reference implementation ("the oracle"): {!eval_batch} is defined
    to be bit-identical to it, and tests enforce that. *)

type packed = Batch_kernel.t
(** A network packed into contiguous struct-of-arrays storage
    ({!Batch_kernel.t}): centers, reciprocal radii and weights in
    C-layout bigarrays, built once per model. *)

val pack : t -> packed
(** Pack a fitted network for batched evaluation.  Raises
    [Invalid_argument] on an empty network or invalid radii. *)

val eval_batch : ?force_scalar:bool -> packed -> float array array -> float array
(** Evaluate a batch of points in one vectorised, zero-allocation-per-
    point C pass.  Bit-identical to mapping {!eval} over the batch, at
    any batch size, on every instruction set ([force_scalar] pins the
    portable C path; tests use it to cross-check SIMD dispatch). *)

val eval_batch_fresh :
  ?force_scalar:bool -> packed -> float array array -> float array
(** Like {!eval_batch} but evaluating through freshly allocated buffers
    rather than the packed model's shared scratch, so several domains
    may evaluate one [packed] concurrently (the model arrays themselves
    are read-only after {!pack}). *)

val design_matrix : center array -> float array array -> Archpred_linalg.Matrix.t
(** [design_matrix centers points] is the p-by-m matrix [H] with
    [H(i)(j) = basis centers.(j) points.(i)]. *)

type fit_diagnostics = {
  rss : float;
  sigma2 : float;  (** maximum-likelihood error variance, [rss / p] *)
  regularized : bool;
}

val fit :
  ?ridge:float ->
  centers:center array ->
  points:float array array ->
  responses:float array ->
  unit ->
  t * fit_diagnostics
(** Least-squares weight fit with a small ridge penalty ([ridge], default
    [1e-8]; pass [0.] for a plain fit).  The ridge keeps weights bounded
    when tree-derived centers nearly coincide, and mirrors the jitter used
    by the selection scorer.  Raises [Invalid_argument] when [centers] is
    empty or dimensions disagree. *)

val check_center : center -> unit
(** Raise [Invalid_argument] if any radius is not strictly positive. *)
