(** Deterministic exponential for the RBF hot path.

    [exp_neg s] computes [exp (-s)] with a fixed table-driven operation
    sequence (relative error ~4e-14) instead of libm, so that the scalar
    reference evaluator ({!Network.eval}) and the vectorised C batch
    kernel ({!Batch_kernel}) produce bit-identical results: every kernel
    path replays this exact sequence of IEEE-754 operations per lane.

    The tables are exposed as C-layout bigarrays because the C stubs
    index them directly; treat them as read-only. *)

type table = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val t2j : table
(** [2^(j/64)] for [j = 0..63].  Read-only. *)

val pow2 : table
(** [2^e] at index [e + 1099], for [e = -1099..1023].  Read-only. *)

val exp_neg : float -> float
(** [exp_neg s] is [exp (-s)] for [|s| <= 708]; [0.] / [infinity] past
    the over/underflow horizon, and NaN propagates. *)
