(** Zero-allocation batched RBF evaluation.

    A packed model holds its centers, reciprocal radii and weights in
    contiguous C-layout bigarrays (struct-of-arrays), built once at
    model construction or load.  {!eval_into} then evaluates a batch of
    query points against every center in a single C pass — vectorised
    across points with AVX-512 or AVX2 where the host supports them —
    without allocating per point.

    Every path is bit-identical to the scalar reference
    {!Network.eval}: the kernel replays the reference's exact IEEE-754
    operation sequence per point (see rbf_kernel_stubs.c), so batching,
    SIMD width and instruction-set dispatch never change results. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val pack :
  dim:int ->
  centers:float array array ->
  radii:float array array ->
  weights:float array ->
  t
(** Pack a model into contiguous storage.  Raises [Invalid_argument] on
    empty models, arity mismatches or non-positive radii. *)

val n_centers : t -> int
val dim : t -> int

val create_buffer : int -> buffer
(** A fresh C-layout float64 buffer of at least [n] elements (a buffer
    of length 1 for [n = 0]). *)

val set_query : t -> buffer -> int -> float array -> unit
(** [set_query t queries i point] writes [point] into row [i] of a
    query buffer laid out as [n] consecutive [dim t]-sized rows.
    Raises [Invalid_argument] on arity mismatch or out-of-bounds row. *)

val load_queries : t -> buffer -> float array array -> unit
(** Marshal a whole batch into [queries] (row [i] = point [i]) in one
    fused loop — substantially faster than per-point {!set_query}.
    Raises [Invalid_argument] if the buffer is too small or any point
    has the wrong arity. *)

val eval_into : ?force_scalar:bool -> t -> queries:buffer -> n:int -> out:buffer -> unit
(** Evaluate the first [n] rows of [queries], writing the network
    response of row [i] to [out.{i}].  Allocation-free.
    [force_scalar] pins the portable scalar C path (used by tests to
    cross-check the SIMD paths); the default picks the best instruction
    set available at runtime. *)

val eval_points : ?force_scalar:bool -> t -> float array array -> float array
(** Convenience wrapper: marshal [points] into an internal scratch
    buffer (reused across calls, grown on demand), evaluate, and return
    the responses in order.  Because of the shared scratch, this entry
    point must not be called concurrently from several domains on the
    same [t]; {!eval_into} with caller-owned buffers is re-entrant. *)

val eval_points_fresh :
  ?force_scalar:bool -> t -> float array array -> float array
(** Like {!eval_points} but with freshly allocated buffers instead of
    [t]'s scratch: safe to call concurrently from several domains on one
    packed model.  Costs two buffer allocations per call, so
    single-domain loops should prefer {!eval_points}. *)

val simd_level : unit -> string
(** Instruction set the kernel dispatches to on this host:
    ["avx512"], ["avx2"] or ["scalar"]. *)
