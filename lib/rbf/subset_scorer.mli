(** Fast scoring of candidate center subsets.

    The tree-ordered selection evaluates thousands of subsets that differ
    by one to three columns.  Refitting each by QR costs O(p m^2) per
    subset; instead this scorer precomputes the Gram matrix [G = H'H], the
    moment vector [H'y] and [y'y] once
    (see {!Archpred_linalg.Incremental_ls}), after which any subset's
    residual sum of squares follows from an m-by-m Cholesky solve — and
    subsets reached by pushing/popping columns on a shared {!factor} cost
    only O(m^2) per step.

    A tiny jitter on the Gram diagonal keeps the solve defined when two
    candidate centers (nearly) coincide. *)

type t

val create : design:Archpred_linalg.Matrix.t -> responses:float array -> t
(** Precompute moments of the full p-by-M design matrix. *)

val incremental : t -> Archpred_linalg.Incremental_ls.t
(** The underlying moments, for callers that walk subsets incrementally
    (create one factor per domain from this). *)

val add_row : t -> row:float array -> y:float -> unit
(** Stream one new observation — a design-matrix row (the kernel value of
    every candidate center at the new point) and its response — into the
    precomputed moments ({!Archpred_linalg.Incremental_ls.add_row}).  The
    internal scratch factor is reset; factors handed out via {!incremental}
    are stale after this call and must be re-pushed before scoring. *)

val score_factor :
  t -> Archpred_linalg.Incremental_ls.factor -> criterion:Criteria.t -> float
(** Criterion value of a factor's active subset; [infinity] for the empty
    set or [m >= p]. *)

val sigma2 : t -> int list -> float option
(** Maximum-likelihood error variance [RSS / p] of the least-squares fit
    restricted to the given candidate columns; [None] for the empty subset,
    for subsets with [m >= p], or if the (jittered) normal equations are
    still singular. *)

val score : t -> criterion:Criteria.t -> int list -> float
(** Criterion value of a subset; [infinity] where {!sigma2} is [None]. *)
