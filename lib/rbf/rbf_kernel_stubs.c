/* Vectorised batch evaluation of an RBF network over struct-of-arrays
 * storage (see batch_kernel.mli).
 *
 * Bit-identity contract: every path below -- portable C scalar, AVX2
 * (8 points as 2x4 lanes) and AVX-512 (8 lanes) -- performs exactly the
 * same sequence of IEEE-754 double operations per point as the OCaml
 * reference in rbf_math.ml / network.ml:
 *
 *   d   = (x[k] - c[j][k]) * ir[j][k]         (k ascending)
 *   s   = ((d0*d0 + d1*d1) + d2*d2) + ...     (left-associated)
 *   h   = exp_neg(s)                          (table + degree-4 poly)
 *   acc = ((w0*h0 + w1*h1) + w2*h2) + ...     (left-associated)
 *
 * Vectorisation is across *points* (lanes = points), never across the
 * k/j reductions, so the per-point operation order is untouched.  The
 * exp tables are the bigarrays built in rbf_math.ml, passed in on every
 * call -- the C side holds no tables of its own, so the two languages
 * cannot drift.  The hex constants below must match rbf_math.ml.
 *
 * The dune stanza compiles this file with -ffp-contract=off: a fused
 * multiply-add would change results in the last ulp and break the
 * contract (OCaml's code generator never emits FMA for a *. b +. c).
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <math.h>
#if defined(__x86_64__)
#include <immintrin.h>
#endif

#define INVLN2_64 0x1.71547652b82fep+6
#define LN2_64_HI 0x1.62e42fee00000p-7
#define LN2_64_LO 0x1.a39ef35793c76p-39
#define POLY_C3 0.16666666666666666
#define POLY_C4 0.041666666666666664
#define POW2_OFFSET 1099
#define POW2_LAST 2122

static double exp_neg_scalar(double s, const double *t2j, const double *p2) {
  if (!(fabs(s) <= 708.0)) {
    if (s != s) return s;
    return s > 0.0 ? 0.0 : INFINITY;
  }
  double z = (-s) * INVLN2_64;
  long n = (long)(z - 0.5);
  double nf = (double)n;
  double r = ((-s) - nf * LN2_64_HI) - nf * LN2_64_LO;
  long j = n & 63, e = n >> 6;
  double p = 1.0 + r * (1.0 + r * (0.5 + r * (POLY_C3 + r * POLY_C4)));
  return t2j[j] * p * p2[e + POW2_OFFSET];
}

static void eval_scalar(const double *c, const double *ir, const double *w,
                        long m, long dim, const double *q, long i0, long n,
                        double *out, const double *t2j, const double *p2) {
  for (long i = i0; i < n; i++) {
    const double *x = q + i * dim;
    double acc = 0.0;
    for (long j = 0; j < m; j++) {
      const double *cj = c + j * dim, *irj = ir + j * dim;
      double s = 0.0;
      for (long k = 0; k < dim; k++) {
        double d = (x[k] - cj[k]) * irj[k];
        s = s + d * d;
      }
      acc = acc + w[j] * exp_neg_scalar(s, t2j, p2);
    }
    out[i] = acc;
  }
}

#if defined(__x86_64__)

/* Lanes that fail the |s| <= 708 guard still run the table path with a
 * clamped index (their result is discarded by the final blend), so the
 * gathers stay in bounds.  _mm256_cvttpd_epi32 truncates toward zero,
 * matching the C (long) cast and OCaml's int_of_float. */
__attribute__((target("avx2")))
static inline __m256d exp_neg_avx2(__m256d s, const double *t2j,
                                   const double *p2) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d abs_s = _mm256_and_pd(s, abs_mask);
  __m256d ok = _mm256_cmp_pd(abs_s, _mm256_set1_pd(708.0), _CMP_LE_OQ);
  __m256d ns = _mm256_sub_pd(_mm256_setzero_pd(), s);
  __m256d z = _mm256_mul_pd(ns, _mm256_set1_pd(INVLN2_64));
  __m128i ni = _mm256_cvttpd_epi32(_mm256_sub_pd(z, _mm256_set1_pd(0.5)));
  __m256d nf = _mm256_cvtepi32_pd(ni);
  __m256d r = _mm256_sub_pd(
      _mm256_sub_pd(ns, _mm256_mul_pd(nf, _mm256_set1_pd(LN2_64_HI))),
      _mm256_mul_pd(nf, _mm256_set1_pd(LN2_64_LO)));
  __m128i j = _mm_and_si128(ni, _mm_set1_epi32(63));
  __m128i e = _mm_srai_epi32(ni, 6);
  __m128i idx = _mm_add_epi32(e, _mm_set1_epi32(POW2_OFFSET));
  idx = _mm_max_epi32(idx, _mm_setzero_si128());
  idx = _mm_min_epi32(idx, _mm_set1_epi32(POW2_LAST));
  __m256d p = _mm256_add_pd(_mm256_set1_pd(POLY_C3),
                            _mm256_mul_pd(r, _mm256_set1_pd(POLY_C4)));
  p = _mm256_add_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(r, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(r, p));
  p = _mm256_add_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(r, p));
  __m256d tj = _mm256_i32gather_pd(t2j, j, 8);
  __m256d pe = _mm256_i32gather_pd(p2, idx, 8);
  __m256d res = _mm256_mul_pd(_mm256_mul_pd(tj, p), pe);
  /* slow lanes: NaN passes through; s > 708 -> 0; s < -708 -> inf */
  __m256d pos = _mm256_cmp_pd(s, _mm256_setzero_pd(), _CMP_GT_OQ);
  __m256d alt =
      _mm256_blendv_pd(_mm256_set1_pd(INFINITY), _mm256_setzero_pd(), pos);
  __m256d isnan = _mm256_cmp_pd(s, s, _CMP_UNORD_Q);
  alt = _mm256_blendv_pd(alt, s, isnan);
  return _mm256_blendv_pd(alt, res, ok);
}

/* 8 points per iteration as two interleaved 4-lane accumulators: the
 * broadcast center/radius/weight loads are shared across both halves,
 * which on this kernel beats plain 4-wide by ~15%. */
__attribute__((target("avx2")))
static void eval_avx2(const double *c, const double *ir, const double *w,
                      long m, long dim, const double *q, long n, double *out,
                      const double *t2j, const double *p2) {
  long i = 0;
  double xT[64][8] __attribute__((aligned(32)));
  if (dim <= 64)
    for (; i + 8 <= n; i += 8) {
      for (long k = 0; k < dim; k++)
        for (long l = 0; l < 8; l++) xT[k][l] = q[(i + l) * dim + k];
      __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
      for (long j = 0; j < m; j++) {
        const double *cj = c + j * dim, *irj = ir + j * dim;
        __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
        for (long k = 0; k < dim; k++) {
          __m256d ck = _mm256_set1_pd(cj[k]);
          __m256d irk = _mm256_set1_pd(irj[k]);
          __m256d d0 =
              _mm256_mul_pd(_mm256_sub_pd(_mm256_load_pd(xT[k]), ck), irk);
          __m256d d1 =
              _mm256_mul_pd(_mm256_sub_pd(_mm256_load_pd(xT[k] + 4), ck), irk);
          s0 = _mm256_add_pd(s0, _mm256_mul_pd(d0, d0));
          s1 = _mm256_add_pd(s1, _mm256_mul_pd(d1, d1));
        }
        __m256d e0 = exp_neg_avx2(s0, t2j, p2);
        __m256d e1 = exp_neg_avx2(s1, t2j, p2);
        __m256d wj = _mm256_set1_pd(w[j]);
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(wj, e0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(wj, e1));
      }
      _mm256_storeu_pd(out + i, acc0);
      _mm256_storeu_pd(out + i + 4, acc1);
    }
  eval_scalar(c, ir, w, m, dim, q, i, n, out, t2j, p2);
}

__attribute__((target("avx512f")))
static inline __m512d exp_neg_avx512(__m512d s, const double *t2j,
                                     const double *p2) {
  __m512d abs_s = _mm512_abs_pd(s);
  __mmask8 ok = _mm512_cmp_pd_mask(abs_s, _mm512_set1_pd(708.0), _CMP_LE_OQ);
  __m512d ns = _mm512_sub_pd(_mm512_setzero_pd(), s);
  __m512d z = _mm512_mul_pd(ns, _mm512_set1_pd(INVLN2_64));
  __m256i ni = _mm512_cvttpd_epi32(_mm512_sub_pd(z, _mm512_set1_pd(0.5)));
  __m512d nf = _mm512_cvtepi32_pd(ni);
  __m512d r = _mm512_sub_pd(
      _mm512_sub_pd(ns, _mm512_mul_pd(nf, _mm512_set1_pd(LN2_64_HI))),
      _mm512_mul_pd(nf, _mm512_set1_pd(LN2_64_LO)));
  __m256i j = _mm256_and_si256(ni, _mm256_set1_epi32(63));
  __m256i e = _mm256_srai_epi32(ni, 6);
  __m256i idx = _mm256_add_epi32(e, _mm256_set1_epi32(POW2_OFFSET));
  idx = _mm256_max_epi32(idx, _mm256_setzero_si256());
  idx = _mm256_min_epi32(idx, _mm256_set1_epi32(POW2_LAST));
  __m512d p = _mm512_add_pd(_mm512_set1_pd(POLY_C3),
                            _mm512_mul_pd(r, _mm512_set1_pd(POLY_C4)));
  p = _mm512_add_pd(_mm512_set1_pd(0.5), _mm512_mul_pd(r, p));
  p = _mm512_add_pd(_mm512_set1_pd(1.0), _mm512_mul_pd(r, p));
  p = _mm512_add_pd(_mm512_set1_pd(1.0), _mm512_mul_pd(r, p));
  __m512d tj = _mm512_i32gather_pd(j, t2j, 8);
  __m512d pe = _mm512_i32gather_pd(idx, p2, 8);
  __m512d res = _mm512_mul_pd(_mm512_mul_pd(tj, p), pe);
  __mmask8 pos = _mm512_cmp_pd_mask(s, _mm512_setzero_pd(), _CMP_GT_OQ);
  __m512d alt =
      _mm512_mask_blend_pd(pos, _mm512_set1_pd(INFINITY), _mm512_setzero_pd());
  __mmask8 isnan = _mm512_cmp_pd_mask(s, s, _CMP_UNORD_Q);
  alt = _mm512_mask_blend_pd(isnan, alt, s);
  return _mm512_mask_blend_pd(ok, alt, res);
}

__attribute__((target("avx512f")))
static void eval_avx512(const double *c, const double *ir, const double *w,
                        long m, long dim, const double *q, long n, double *out,
                        const double *t2j, const double *p2) {
  long i = 0;
  double xT[64][8] __attribute__((aligned(64)));
  if (dim <= 64)
    for (; i + 8 <= n; i += 8) {
      for (long k = 0; k < dim; k++)
        for (long l = 0; l < 8; l++) xT[k][l] = q[(i + l) * dim + k];
      __m512d acc = _mm512_setzero_pd();
      for (long j = 0; j < m; j++) {
        const double *cj = c + j * dim, *irj = ir + j * dim;
        __m512d s = _mm512_setzero_pd();
        for (long k = 0; k < dim; k++) {
          __m512d xk = _mm512_load_pd(xT[k]);
          __m512d d = _mm512_mul_pd(_mm512_sub_pd(xk, _mm512_set1_pd(cj[k])),
                                    _mm512_set1_pd(irj[k]));
          s = _mm512_add_pd(s, _mm512_mul_pd(d, d));
        }
        __m512d e = exp_neg_avx512(s, t2j, p2);
        acc = _mm512_add_pd(acc, _mm512_mul_pd(_mm512_set1_pd(w[j]), e));
      }
      _mm512_storeu_pd(out + i, acc);
    }
  eval_scalar(c, ir, w, m, dim, q, i, n, out, t2j, p2);
}

#endif /* __x86_64__ */

/* 0 = portable scalar, 1 = AVX2, 2 = AVX-512; resolved once. */
static int simd_level_cached = -1;

static int simd_level(void) {
  if (simd_level_cached < 0) {
#if defined(__x86_64__)
    if (__builtin_cpu_supports("avx512f")) simd_level_cached = 2;
    else if (__builtin_cpu_supports("avx2")) simd_level_cached = 1;
    else simd_level_cached = 0;
#else
    simd_level_cached = 0;
#endif
  }
  return simd_level_cached;
}

CAMLprim value archpred_rbf_simd_level(value unit) {
  (void)unit;
  return Val_long(simd_level());
}

/* mode 0 forces the portable scalar path (for cross-path identity
 * tests); mode 1 picks the best available instruction set. */
CAMLprim value archpred_rbf_eval_batch(value vc, value vir, value vw,
                                       value vm, value vdim, value vn,
                                       value vq, value vout,
                                       value vt2j, value vp2, value vmode) {
  const double *c = (double *)Caml_ba_data_val(vc);
  const double *ir = (double *)Caml_ba_data_val(vir);
  const double *w = (double *)Caml_ba_data_val(vw);
  const double *q = (double *)Caml_ba_data_val(vq);
  double *out = (double *)Caml_ba_data_val(vout);
  const double *t2j = (double *)Caml_ba_data_val(vt2j);
  const double *p2 = (double *)Caml_ba_data_val(vp2);
  long m = Long_val(vm);
  long dim = Long_val(vdim);
  long n = Long_val(vn);
#if defined(__x86_64__)
  if (Long_val(vmode) != 0) {
    int level = simd_level();
    if (level == 2) {
      eval_avx512(c, ir, w, m, dim, q, n, out, t2j, p2);
      return Val_unit;
    }
    if (level == 1) {
      eval_avx2(c, ir, w, m, dim, q, n, out, t2j, p2);
      return Val_unit;
    }
  }
#else
  (void)vmode;
#endif
  eval_scalar(c, ir, w, m, dim, q, 0, n, out, t2j, p2);
  return Val_unit;
}

CAMLprim value archpred_rbf_eval_batch_bytecode(value *argv, int argn) {
  (void)argn;
  return archpred_rbf_eval_batch(argv[0], argv[1], argv[2], argv[3], argv[4],
                                 argv[5], argv[6], argv[7], argv[8], argv[9],
                                 argv[10]);
}
