module Tree = Archpred_regtree.Tree
module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares
module Ils = Archpred_linalg.Incremental_ls
module Obs = Archpred_obs

type result = {
  network : Network.t;
  selected_node_ids : int list;
  criterion : float;
  sigma2 : float;
}

let fit_subset ~design ~responses cols =
  match cols with
  | [] -> None
  | _ ->
      let cols = Array.of_list cols in
      let m = Array.length cols in
      let p = Array.length responses in
      if m >= p then None
      else
        let h = Matrix.select_cols design cols in
        let f = Least_squares.fit h responses in
        Some f

let evaluate_subset ~criterion ~design ~responses cols =
  match fit_subset ~design ~responses cols with
  | None -> infinity
  | Some f ->
      Criteria.score criterion ~p:(Array.length responses)
        ~m:(List.length cols) ~sigma2:f.Least_squares.sigma2

let select ?(obs = Obs.null) ?(criterion = Criteria.Aicc) ?scorer ~tree
    ~candidates ~points ~responses () =
  let p = Array.length points in
  if p <> Array.length responses then
    invalid_arg "Selection.select: points/responses mismatch";
  if p = 0 then invalid_arg "Selection.select: empty sample";
  Obs.with_span obs "rbf.select" @@ fun () ->
  (* Full design matrix over every candidate, computed once; subsets are
     scored through precomputed Gram moments.  A caller that already holds
     the moments — the streaming-refit path extends them row by row as
     simulation points arrive — passes [?scorer] and skips both the design
     matrix and the Gram recomputation. *)
  let all_centers = Array.map (fun c -> c.Tree_centers.center) candidates in
  let scorer =
    match scorer with
    | Some s ->
        if Ils.p (Subset_scorer.incremental s) <> p then
          invalid_arg "Selection.select: scorer row count mismatch";
        s
    | None ->
        let design = Network.design_matrix all_centers points in
        Subset_scorer.create ~design ~responses
  in
  let fac = Ils.factor (Subset_scorer.incremental scorer) in
  let selected = Array.make (Array.length candidates) false in
  let current_ids () =
    let acc = ref [] in
    for i = Array.length selected - 1 downto 0 do
      if selected.(i) then acc := i :: !acc
    done;
    !acc
  in
  (* Start from the root center alone. *)
  let root = Tree.root tree in
  selected.(root.Tree.id) <- true;
  let best_score =
    ref (Subset_scorer.score scorer ~criterion (current_ids ()))
  in
  let consider_node (n : Tree.node) =
    match n.Tree.split with
    | None -> ()
    | Some s ->
        let trio = [| n.Tree.id; s.Tree.left.Tree.id; s.Tree.right.Tree.id |] in
        let saved = Array.map (fun id -> selected.(id)) trio in
        (* Everything outside the trio is held fixed; factor it once, then
           each of the eight combinations is at most three O(m^2) pushes
           on top — instead of eight full O(m^3) refactorisations. *)
        Array.iter (fun id -> selected.(id) <- false) trio;
        let base = current_ids () in
        Array.iteri (fun k id -> selected.(id) <- saved.(k)) trio;
        let base_ok = Ils.set fac base in
        let score_combo combo =
          Obs.incr obs "rbf.centers_tried";
          if base_ok then begin
            let pushed = ref 0 in
            let ok = ref true in
            for k = 0 to 2 do
              if !ok && (combo lsr k) land 1 = 1 then
                if Ils.push fac trio.(k) then incr pushed else ok := false
            done;
            let sc =
              if !ok then Subset_scorer.score_factor scorer fac ~criterion
              else infinity
            in
            for _ = 1 to !pushed do
              Ils.pop fac
            done;
            sc
          end
          else begin
            (* Base set not factorisable even with jitter (pathological);
               fall back to from-scratch scoring of the explicit subset. *)
            Array.iteri
              (fun k id -> selected.(id) <- (combo lsr k) land 1 = 1)
              trio;
            let sc = Subset_scorer.score scorer ~criterion (current_ids ()) in
            Array.iteri (fun k id -> selected.(id) <- saved.(k)) trio;
            sc
          end
        in
        let best_combo = ref None in
        for combo = 0 to 7 do
          let sc = score_combo combo in
          match !best_combo with
          | Some (best_sc, _) when best_sc <= sc -> ()
          | Some _ | None -> best_combo := Some (sc, combo)
        done;
        (match !best_combo with
        | Some (sc, combo) when sc <= !best_score ->
            Array.iteri
              (fun k id -> selected.(id) <- (combo lsr k) land 1 = 1)
              trio;
            best_score := sc
        | Some _ | None ->
            (* No combination beat the incumbent; restore. *)
            Array.iteri (fun k id -> selected.(id) <- saved.(k)) trio)
  in
  (* Breadth-first walk mirrors Orr's "move deeper in the regression tree"
     ordering. *)
  let queue = Queue.create () in
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    consider_node n;
    match n.Tree.split with
    | None -> ()
    | Some s ->
        Queue.add s.Tree.left queue;
        Queue.add s.Tree.right queue
  done;
  (* Guarantee a non-empty model: fall back to the root alone. *)
  if current_ids () = [] then selected.(root.Tree.id) <- true;
  let ids = current_ids () in
  let centers = Array.of_list (List.map (fun i -> all_centers.(i)) ids) in
  let network, diag = Network.fit ~centers ~points ~responses () in
  Obs.count obs "rbf.centers_kept" (List.length ids);
  Obs.count obs "ils.pushes" (Ils.pushes fac);
  Obs.count obs "ils.pops" (Ils.pops fac);
  {
    network;
    selected_node_ids = ids;
    criterion =
      Criteria.score criterion ~p ~m:(List.length ids)
        ~sigma2:diag.Network.sigma2;
    sigma2 = diag.Network.sigma2;
  }

let select_forward ?(obs = Obs.null) ?(criterion = Criteria.Aicc) ?max_centers
    ~candidates ~points ~responses () =
  let p = Array.length points in
  if p <> Array.length responses then
    invalid_arg "Selection.select_forward: points/responses mismatch";
  if p = 0 then invalid_arg "Selection.select_forward: empty sample";
  Obs.with_span obs "rbf.select_forward" @@ fun () ->
  let all_centers = Array.map (fun c -> c.Tree_centers.center) candidates in
  let design = Network.design_matrix all_centers points in
  let scorer = Subset_scorer.create ~design ~responses in
  let fac = Ils.factor (Subset_scorer.incremental scorer) in
  let m_cap = match max_centers with Some m -> m | None -> max 1 (p / 2) in
  let chosen = ref [] in
  let best_score = ref infinity in
  let continue_ = ref true in
  while !continue_ && List.length !chosen < m_cap do
    (* The incumbent set is the shared base; each candidate addition is a
       single push on top of it. *)
    if not (Ils.set fac !chosen) then continue_ := false
    else begin
      let best_addition = ref None in
      Array.iteri
        (fun j _ ->
          if not (List.mem j !chosen) then begin
            Obs.incr obs "rbf.centers_tried";
            let sc =
              if Ils.push fac j then begin
                let sc = Subset_scorer.score_factor scorer fac ~criterion in
                Ils.pop fac;
                sc
              end
              else infinity
            in
            match !best_addition with
            | Some (sc', _) when sc' <= sc -> ()
            | Some _ | None -> best_addition := Some (sc, j)
          end)
        candidates;
      match !best_addition with
      | Some (sc, j) when sc < !best_score -. 1e-12 ->
          chosen := j :: !chosen;
          best_score := sc
      | Some _ | None -> continue_ := false
    end
  done;
  let ids = List.sort Int.compare !chosen in
  let ids = if ids = [] then [ 0 ] else ids in
  let centers = Array.of_list (List.map (fun i -> all_centers.(i)) ids) in
  let network, diag = Network.fit ~centers ~points ~responses () in
  Obs.count obs "rbf.centers_kept" (List.length ids);
  Obs.count obs "ils.pushes" (Ils.pushes fac);
  Obs.count obs "ils.pops" (Ils.pops fac);
  {
    network;
    selected_node_ids = ids;
    criterion =
      Criteria.score criterion ~p ~m:(List.length ids)
        ~sigma2:diag.Network.sigma2;
    sigma2 = diag.Network.sigma2;
  }
