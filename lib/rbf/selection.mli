(** Tree-ordered RBF center subset selection (section 2.5 of the paper,
    after Orr et al. 2000).

    The candidate centers are the regression-tree nodes.  Selection starts
    at the root: the root's center is taken, then for each internal node
    the algorithm considers the eight include/exclude combinations of the
    node and its two children (holding the rest of the selection fixed),
    adopts the combination with the lowest model-selection criterion, and
    descends into the children.  The criterion (AICc by default) balances
    fit quality against the number of centers, so the walk stops adding
    centers when extra ones stop paying for themselves. *)

type result = {
  network : Network.t;  (** weights fitted on the training sample *)
  selected_node_ids : int list;  (** tree nodes whose centers were kept *)
  criterion : float;  (** criterion value of the selected model *)
  sigma2 : float;  (** training error variance of the selected model *)
}

val evaluate_subset :
  criterion:Criteria.t ->
  design:Archpred_linalg.Matrix.t ->
  responses:float array ->
  int list ->
  float
(** Criterion score of an explicit candidate subset (columns of the full
    design matrix); [infinity] for the empty set or degenerate fits.
    Exposed for tests and for the center-selection ablation bench. *)

val select :
  ?obs:Archpred_obs.t ->
  ?criterion:Criteria.t ->
  ?scorer:Subset_scorer.t ->
  tree:Archpred_regtree.Tree.t ->
  candidates:Tree_centers.candidate array ->
  points:float array array ->
  responses:float array ->
  unit ->
  result
(** Run the tree-ordered selection and fit the final network.  Records the
    ["rbf.select"] span plus ["rbf.centers_tried"] (combination scorings),
    ["rbf.centers_kept"], and ["ils.pushes"]/["ils.pops"] (Cholesky factor
    work) counters on [obs].  [?scorer] supplies precomputed Gram moments
    of the full candidate design over exactly these [points]/[responses]
    (the streaming-refit path maintains them incrementally via
    {!Subset_scorer.add_row}); without it the design matrix and moments
    are computed here.  Raises [Invalid_argument] on dimension
    mismatches, including a [?scorer] whose row count disagrees with
    [points]. *)

val select_forward :
  ?obs:Archpred_obs.t ->
  ?criterion:Criteria.t ->
  ?max_centers:int ->
  candidates:Tree_centers.candidate array ->
  points:float array array ->
  responses:float array ->
  unit ->
  result
(** Classic greedy forward selection, ignoring the tree structure: start
    empty and repeatedly add the candidate whose inclusion most lowers the
    criterion, until no addition improves it (or [max_centers], default
    [p/2], is reached).  Considerably more expensive than {!select} — it
    scores every unused candidate at every step — and used by the
    center-selection ablation as the no-tree-ordering comparison point. *)
