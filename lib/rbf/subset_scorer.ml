module Ils = Archpred_linalg.Incremental_ls

type t = { ils : Ils.t; scratch : Ils.factor }

(* matches Network.fit's default ridge, so the subset chosen by scoring
   is fitted under the same regularisation *)
let jitter = 1e-8

let create ~design ~responses =
  let ils = Ils.create ~jitter ~design ~responses () in
  { ils; scratch = Ils.factor ils }

let incremental t = t.ils

let add_row t ~row ~y =
  Ils.reset t.scratch;
  Ils.add_row t.ils ~row ~y

let score_factor t fac ~criterion =
  match Ils.sigma2 fac with
  | None -> infinity
  | Some s2 ->
      Criteria.score criterion ~p:(Ils.p t.ils) ~m:(Ils.size fac) ~sigma2:s2

let sigma2 t cols =
  match cols with
  | [] -> None
  | _ -> if Ils.set t.scratch cols then Ils.sigma2 t.scratch else None

let score t ~criterion cols =
  match sigma2 t cols with
  | None -> infinity
  | Some s2 ->
      Criteria.score criterion ~p:(Ils.p t.ils) ~m:(List.length cols)
        ~sigma2:s2
