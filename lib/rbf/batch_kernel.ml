(* Struct-of-arrays packing and batched evaluation; the hot loops live
   in rbf_kernel_stubs.c.  This module is the one place sanctioned by
   archpred-lint's unsafe-index rule to use unchecked bigarray
   accessors: every loop below runs behind an explicit length check, so
   the per-element bounds tests would only re-verify what the guard
   already established. *)

open Bigarray

type buffer = (float, float64_elt, c_layout) Array1.t

type t = {
  m : int;  (* centers *)
  dim : int;
  centers : buffer;  (* m*dim, row-major: center j at [j*dim, dim) *)
  inv_radii : buffer;  (* m*dim: 1/r, precomputed at pack time *)
  weights : buffer;  (* m *)
  (* scratch for [eval_points], grown geometrically and reused across
     calls so steady-state batches allocate nothing but the result
     array.  This makes the convenience path single-domain, like every
     other mutable handle in the pipeline; [eval_into] with
     caller-owned buffers remains re-entrant. *)
  mutable scratch_q : buffer;
  mutable scratch_out : buffer;
}

(* The dimensions pass as three separate immediates: a [(m, dim, n)]
   tuple would be boxed on every call, the one allocation left in the
   [eval_into] hot path. *)
external eval_stub :
  buffer ->
  buffer ->
  buffer ->
  int ->
  int ->
  int ->
  buffer ->
  buffer ->
  buffer ->
  buffer ->
  int ->
  unit = "archpred_rbf_eval_batch_bytecode" "archpred_rbf_eval_batch"
[@@noalloc]

external simd_level_stub : unit -> int = "archpred_rbf_simd_level"

let simd_level () =
  match simd_level_stub () with 2 -> "avx512" | 1 -> "avx2" | _ -> "scalar"

let n_centers t = t.m
let dim t = t.dim
let create_buffer n = Array1.create float64 c_layout (max n 1)

let pack ~dim ~centers ~radii ~weights =
  let m = Array.length centers in
  if m = 0 then invalid_arg "Batch_kernel.pack: no centers";
  if dim <= 0 then invalid_arg "Batch_kernel.pack: non-positive dimension";
  if Array.length radii <> m || Array.length weights <> m then
    invalid_arg "Batch_kernel.pack: centers/radii/weights length mismatch";
  Array.iter
    (fun c ->
      if Array.length c <> dim then
        invalid_arg "Batch_kernel.pack: center arity mismatch")
    centers;
  Array.iter
    (fun r ->
      if Array.length r <> dim then
        invalid_arg "Batch_kernel.pack: radius arity mismatch";
      Array.iter
        (fun radius ->
          if not (radius > 0.) then
            invalid_arg "Batch_kernel.pack: non-positive radius")
        r)
    radii;
  let cb = Array1.create float64 c_layout (m * dim) in
  let irb = Array1.create float64 c_layout (m * dim) in
  let wb = Array1.create float64 c_layout m in
  for j = 0 to m - 1 do
    let cj = centers.(j) and rj = radii.(j) in
    for k = 0 to dim - 1 do
      Array1.unsafe_set cb ((j * dim) + k) (Array.unsafe_get cj k);
      (* 1/r here must stay bitwise equal to the 1. /. r.(k) the scalar
         reference computes per call: same operands, same op. *)
      Array1.unsafe_set irb ((j * dim) + k) (1. /. Array.unsafe_get rj k)
    done;
    Array1.unsafe_set wb j (Array.unsafe_get weights j)
  done;
  {
    m;
    dim;
    centers = cb;
    inv_radii = irb;
    weights = wb;
    scratch_q = Array1.create float64 c_layout 1;
    scratch_out = Array1.create float64 c_layout 1;
  }

(* The [buffer] annotations below are load-bearing: without them the
   bigarray kind stays polymorphic inside this unit (the .mli only
   constrains the boundary), and [Array1.unsafe_set] falls back to the
   generic accessor — a C call per element, ~8x slower than the
   monomorphic float64 store. *)
let set_query t (queries : buffer) i point =
  if Array.length point <> t.dim then
    invalid_arg "Batch_kernel.set_query: point arity mismatch";
  if i < 0 || ((i + 1) * t.dim) > Array1.dim queries then
    invalid_arg "Batch_kernel.set_query: row out of bounds";
  for k = 0 to t.dim - 1 do
    Array1.unsafe_set queries ((i * t.dim) + k) (Array.unsafe_get point k)
  done

(* One fused marshalling loop for a whole batch: per-point [set_query]
   calls cost several times the copy itself (call + revalidation per
   row), which at small center counts rivals the kernel.  Validation
   runs as its own pass before the copy loop: a raise-capable call
   inside the copy loop stops the compiler keeping the bigarray data
   pointer in a register, which measures ~8x slower than the split
   form. *)
let load_queries t (queries : buffer) points =
  let dim = t.dim in
  let n = Array.length points in
  if n * dim > Array1.dim queries then
    invalid_arg "Batch_kernel.load_queries: query buffer too small";
  for i = 0 to n - 1 do
    if Array.length (Array.unsafe_get points i) <> dim then
      invalid_arg "Batch_kernel.set_query: point arity mismatch"
  done;
  for i = 0 to n - 1 do
    let p = Array.unsafe_get points i in
    let base = i * dim in
    for k = 0 to dim - 1 do
      Array1.unsafe_set queries (base + k) (Array.unsafe_get p k)
    done
  done

let eval_into ?(force_scalar = false) t ~queries ~n ~out =
  if n < 0 then invalid_arg "Batch_kernel.eval_into: negative batch";
  if n * t.dim > Array1.dim queries then
    invalid_arg "Batch_kernel.eval_into: query buffer too small";
  if n > Array1.dim out then
    invalid_arg "Batch_kernel.eval_into: output buffer too small";
  if n > 0 then
    eval_stub t.centers t.inv_radii t.weights t.m t.dim n queries out
      Rbf_math.t2j Rbf_math.pow2
      (if force_scalar then 0 else 1)

(* Re-entrant variant: fresh buffers instead of [t]'s scratch, so
   concurrent domains can evaluate against one packed model.  The extra
   allocations are the price of that freedom — single-domain callers
   should stay on [eval_points]. *)
let eval_points_fresh ?force_scalar t points =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    let queries = create_buffer (n * t.dim) in
    let out = create_buffer n in
    load_queries t queries points;
    eval_into ?force_scalar t ~queries ~n ~out;
    Array.init n (fun i -> Array1.unsafe_get out i)
  end

let eval_points ?force_scalar t points =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    if Array1.dim t.scratch_q < n * t.dim then
      t.scratch_q <- Array1.create float64 c_layout (2 * n * t.dim);
    if Array1.dim t.scratch_out < n then
      t.scratch_out <- Array1.create float64 c_layout (2 * n);
    load_queries t t.scratch_q points;
    eval_into ?force_scalar t ~queries:t.scratch_q ~n ~out:t.scratch_out;
    let out = t.scratch_out in
    Array.init n (fun i -> Array1.unsafe_get out i)
  end
