(** Structured observability: hierarchical timing spans, counters, and
    gauges, with pluggable output sinks.

    A handle is either live (created with {!create}) or the free {!null}
    handle.  Every recording operation on {!null} is a no-op that costs
    one pattern match, so instrumented code pays nothing when
    observability is off.

    Domain behaviour: spans and counters may be recorded from any domain
    (the parallel pipeline stages run on {!Stats.Parallel} workers).
    Each domain keeps a private span stack and counter buffer; counter
    deltas are merged into the shared totals when one of that domain's
    spans closes, and on any read ({!counters}, {!report}, {!close}).
    Read APIs must be called outside parallel sections. *)

module Error = Error
module Json = Json
module Sink = Sink

val now_ns : unit -> int64
(** Monotonic clock read (CLOCK_MONOTONIC, nanoseconds).  Exported so
    elapsed-time measurements elsewhere (deadlines in [Stats.Parallel],
    experiment timing) never touch the wall clock — the [wall-clock]
    lint rule forbids [Unix.gettimeofday]/[Sys.time] outside this
    library and [bench/]. *)

type t

val null : t
(** The disabled handle: recording is a no-op, reads return nothing. *)

val create : ?sink:Sink.t -> unit -> t
(** Fresh handle streaming events to [sink] (default {!Sink.silent};
    aggregates are still collected for {!report} either way). *)

val enabled : t -> bool

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] times [f ()] under span [name], nested inside
    whatever span is open on the current domain.  Exception-safe: the
    span closes (and is recorded) even if [f] raises. *)

val count : t -> string -> int -> unit
(** Add to a named counter.  Safe to call from worker domains. *)

val incr : t -> string -> unit
(** [incr t name] is [count t name 1]. *)

val gauge : t -> string -> float -> unit
(** Record a point-in-time observation (last write wins in the
    aggregate; each write is streamed to the sink). *)

val counters : t -> (string * int) list
(** Merged counter totals, sorted by name.  Call outside parallel
    sections only. *)

val counter : t -> string -> int
(** One counter's merged total; 0 if never incremented. *)

val gauges : t -> (string * float) list
(** Last-written gauge values, sorted by name. *)

val spans : t -> (string list * int) list
(** Aggregated span paths with call counts, in first-seen order. *)

val report : t -> Format.formatter -> unit
(** Human-readable summary: span tree with total/self time and call
    counts, then counters and gauges.  [self] excludes time spent in
    recorded child spans. *)

val close : t -> unit
(** Merge all counter buffers, emit final [Counter] events to the sink,
    and flush it.  Idempotent in effect but re-emits totals if counters
    moved since the last close; call once at end of run. *)
