(** Minimal JSON values: enough to emit and re-parse the JSON-lines
    metrics stream without external dependencies.

    {!Sink.jsonl} serialises events with {!to_string}; tests and the
    smoke-check executable round-trip them with {!of_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialisation with full string escaping.
    Non-finite floats render as [null] (JSON has no literals for them). *)

val of_string : string -> (t, string) result
(** Parse one complete JSON value; [Error] carries a position-annotated
    message.  Numbers without [./e] parse as {!Int}, others as {!Float}. *)

val member : string -> t -> t option
(** [member k (Obj fields)] looks up key [k]; [None] on other values. *)
