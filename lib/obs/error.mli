(** The single error type raised by library entry points.

    Entry points across [archpred.core] and [archpred.design] report
    recoverable failures — bad API inputs, malformed environment
    variables, unreadable model files, infeasible searches — through one
    variant, so that executables can render a clear message and exit with
    a stable, class-specific code instead of pattern-matching on
    [Failure]/[Invalid_argument] strings.  The type lives in this base
    library (every other archpred library depends on it) and is
    re-exported as [Archpred_core.Error]. *)

type t =
  | Invalid_input of { where : string; what : string }
      (** A caller-supplied argument is unusable (empty grid, bad size). *)
  | Invalid_env of { var : string; what : string }
      (** An environment variable is set to a value that cannot be used. *)
  | Io_error of { path : string; what : string }
      (** A file could not be read or written. *)
  | Parse_error of { where : string; line : int; what : string }
      (** Persistent data (e.g. a saved model) failed to parse. *)
  | Infeasible of { where : string; what : string }
      (** A well-posed request has no answer (e.g. constrained search
          found no feasible point). *)

exception Archpred of t
(** The one exception entry points raise for recoverable errors. *)

val to_string : t -> string
(** Human-readable, single-line rendering. *)

val exit_code : t -> int
(** Stable process exit code per error class: invalid input 2, bad
    environment 3, I/O 4, parse 5, infeasible 6.  (1 stays generic, and
    cmdliner owns 124/125.) *)

val invalid_input : where:string -> string -> 'a
val invalid_env : var:string -> string -> 'a
val io_error : path:string -> string -> 'a
val parse_error : where:string -> line:int -> string -> 'a
val infeasible : where:string -> string -> 'a

val guard : (unit -> 'a) -> ('a, t) result
(** Run [f], capturing {!Archpred} as [Error]. *)
