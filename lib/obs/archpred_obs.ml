module Error = Error
module Json = Json
module Sink = Sink

(* Elapsed time must come from a monotonic source (simulation batches run
   long enough for NTP slews to matter); bechamel's clock stub reads
   CLOCK_MONOTONIC in nanoseconds without allocating. *)
let now_ns () = Monotonic_clock.now ()

type agg = { mutable total_ns : int64; mutable calls : int }

(* One counter buffer per domain.  Increments touch only the owning
   domain's hashtable (no lock, no sharing); the cells are atomics so a
   merge from another domain reads coherent values.  Buffers register
   themselves on first use so merges can reach every domain. *)
type buffer = (string, int Atomic.t) Hashtbl.t

type state = {
  sink : Sink.t;
  lock : Mutex.t;
  totals : (string, int) Hashtbl.t;  (* merged counter totals *)
  gauges : (string, float) Hashtbl.t;  (* last-written gauge values *)
  spans : (string list, agg) Hashtbl.t;
  mutable span_order : string list list;  (* first-seen order, reversed *)
  buffers : buffer list ref;
  dls : (string list ref * buffer) Domain.DLS.key;
      (* per-domain span stack and counter buffer *)
}

type t = state option

let null = None

let create ?(sink = Sink.silent) () =
  let lock = Mutex.create () in
  let buffers = ref [] in
  let dls =
    Domain.DLS.new_key (fun () ->
        let buf : buffer = Hashtbl.create 16 in
        Mutex.lock lock;
        buffers := buf :: !buffers;
        Mutex.unlock lock;
        (ref [], buf))
  in
  Some
    {
      sink;
      lock;
      totals = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      spans = Hashtbl.create 32;
      span_order = [];
      buffers;
      dls;
    }

let enabled t = t <> None

(* ---------- counters ---------- *)

let count t name v =
  match t with
  | None -> ()
  | Some s -> (
      let _, buf = Domain.DLS.get s.dls in
      match Hashtbl.find_opt buf name with
      | Some a -> ignore (Atomic.fetch_and_add a v)
      | None -> Hashtbl.add buf name (Atomic.make v))

let incr t name = count t name 1

(* Drain one domain buffer into the merged totals.  Caller holds the
   lock.  Draining a buffer owned by a *running* domain would race on the
   hashtable structure, so cross-domain merges (counters/report/close)
   must only happen outside parallel sections — which is where read APIs
   are called anyway; the owning domain's own buffer is always safe. *)
(* Bindings sorted by their (unique) string key.  Hashtbl iteration
   order is unspecified, and the values may carry floats (gauges), so
   determinism comes from sorting on the key alone. *)
let sorted_bindings tbl =
  (* archpred-lint: allow hashtbl-order -- sanctioned wrapper: fold feeds a total-order key sort *)
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sweep_locked s (buf : buffer) =
  (* archpred-lint: allow hashtbl-order -- commutative int-add merge into totals *)
  Hashtbl.iter
    (fun name a ->
      let v = Atomic.exchange a 0 in
      if v <> 0 then
        let prev = Option.value ~default:0 (Hashtbl.find_opt s.totals name) in
        Hashtbl.replace s.totals name (prev + v))
    buf

let merge_all_locked s = List.iter (sweep_locked s) !(s.buffers)

let counters t =
  match t with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      merge_all_locked s;
      let out = sorted_bindings s.totals in
      Mutex.unlock s.lock;
      out

let counter t name =
  match List.assoc_opt name (counters t) with Some v -> v | None -> 0

(* ---------- gauges ---------- *)

let gauge t name value =
  match t with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      Hashtbl.replace s.gauges name value;
      Sink.emit s.sink (Sink.Gauge { name; value });
      Mutex.unlock s.lock

let gauges t =
  match t with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      let out = sorted_bindings s.gauges in
      Mutex.unlock s.lock;
      out

(* ---------- spans ---------- *)

let record_span s path ns =
  Mutex.lock s.lock;
  (match Hashtbl.find_opt s.spans path with
  | Some a ->
      a.total_ns <- Int64.add a.total_ns ns;
      a.calls <- a.calls + 1
  | None ->
      Hashtbl.add s.spans path { total_ns = ns; calls = 1 };
      s.span_order <- path :: s.span_order);
  (* The issue's merge point: fold this domain's counter deltas into the
     shared totals whenever one of its spans closes. *)
  let _, buf = Domain.DLS.get s.dls in
  sweep_locked s buf;
  Sink.emit s.sink (Sink.Span { path; ns });
  Mutex.unlock s.lock

let with_span t name f =
  match t with
  | None -> f ()
  | Some s ->
      let stack, _ = Domain.DLS.get s.dls in
      stack := name :: !stack;
      let path = List.rev !stack in
      let t0 = now_ns () in
      Fun.protect f ~finally:(fun () ->
          let ns = Int64.sub (now_ns ()) t0 in
          (match !stack with [] -> () | _ :: tl -> stack := tl);
          record_span s path ns)

let spans t =
  match t with
  | None -> []
  | Some s ->
      Mutex.lock s.lock;
      let order = List.rev s.span_order in
      let out =
        List.map
          (fun path ->
            let a = Hashtbl.find s.spans path in
            (path, a.calls))
          order
      in
      Mutex.unlock s.lock;
      out

(* ---------- report / close ---------- *)

let pretty_ns ns =
  let f = Int64.to_float ns in
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1f us" (f /. 1e3)
  else Printf.sprintf "%Ld ns" ns

let parent path =
  match List.rev path with [] | [ _ ] -> None | _ :: rev -> Some (List.rev rev)

let leaf path = List.nth path (List.length path - 1)

let report t ppf =
  match t with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      merge_all_locked s;
      let order = List.rev s.span_order in
      let spans =
        List.map
          (fun p ->
            let a = Hashtbl.find s.spans p in
            (p, a.total_ns, a.calls))
          order
      in
      let counters = sorted_bindings s.totals in
      let gauges = sorted_bindings s.gauges in
      Mutex.unlock s.lock;
      let have p = List.exists (fun (q, _, _) -> q = p) spans in
      let children p =
        List.filter (fun (q, _, _) -> parent q = Some p) spans
      in
      let self_of p total =
        let child_total =
          List.fold_left
            (fun acc (_, ns, _) -> Int64.add acc ns)
            0L (children p)
        in
        Int64.max 0L (Int64.sub total child_total)
      in
      Format.fprintf ppf "@.=== observability report ===@.";
      if spans <> [] then begin
        Format.fprintf ppf "%-44s %12s %12s %8s@." "span (tree)" "total"
          "self" "calls";
        let rec print depth (p, total, calls) =
          let name = String.make (2 * depth) ' ' ^ leaf p in
          Format.fprintf ppf "%-44s %12s %12s %8d@." name (pretty_ns total)
            (pretty_ns (self_of p total))
            calls;
          List.iter (print (depth + 1)) (children p)
        in
        let roots =
          List.filter
            (fun (p, _, _) ->
              match parent p with None -> true | Some q -> not (have q))
            spans
        in
        List.iter (print 0) roots
      end;
      if counters <> [] then begin
        Format.fprintf ppf "counters@.";
        List.iter
          (fun (name, v) -> Format.fprintf ppf "  %-42s %12d@." name v)
          counters
      end;
      if gauges <> [] then begin
        Format.fprintf ppf "gauges@.";
        List.iter
          (fun (name, v) -> Format.fprintf ppf "  %-42s %12g@." name v)
          gauges
      end

let close t =
  match t with
  | None -> ()
  | Some s ->
      Mutex.lock s.lock;
      merge_all_locked s;
      let counters = sorted_bindings s.totals in
      List.iter
        (fun (name, value) -> Sink.emit s.sink (Sink.Counter { name; value }))
        counters;
      Sink.flush s.sink;
      Mutex.unlock s.lock
