type t =
  | Invalid_input of { where : string; what : string }
  | Invalid_env of { var : string; what : string }
  | Io_error of { path : string; what : string }
  | Parse_error of { where : string; line : int; what : string }
  | Infeasible of { where : string; what : string }

exception Archpred of t

let to_string = function
  | Invalid_input { where; what } -> Printf.sprintf "%s: %s" where what
  | Invalid_env { var; what } -> Printf.sprintf "environment %s: %s" var what
  | Io_error { path; what } -> Printf.sprintf "%s: %s" path what
  | Parse_error { where; line; what } ->
      Printf.sprintf "%s: line %d: %s" where line what
  | Infeasible { where; what } -> Printf.sprintf "%s: %s" where what

let exit_code = function
  | Invalid_input _ -> 2
  | Invalid_env _ -> 3
  | Io_error _ -> 4
  | Parse_error _ -> 5
  | Infeasible _ -> 6

let invalid_input ~where what = raise (Archpred (Invalid_input { where; what }))
let invalid_env ~var what = raise (Archpred (Invalid_env { var; what }))
let io_error ~path what = raise (Archpred (Io_error { path; what }))

let parse_error ~where ~line what =
  raise (Archpred (Parse_error { where; line; what }))

let infeasible ~where what = raise (Archpred (Infeasible { where; what }))

let guard f =
  match f () with v -> Ok v | exception Archpred e -> Result.Error e
