type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* %.17g round-trips every float; JSON has no nan/inf literals. *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* Recursive-descent parser over the input string.  Covers the JSON this
   library emits (and standard JSON generally) without external deps. *)
exception Bad of int * string

let of_string text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub text !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = text.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then fail "unterminated escape"
            else
              let e = text.[!pos] in
              advance ();
              match e with
              | '"' | '\\' | '/' ->
                  Buffer.add_char buf e;
                  go ()
              | 'n' ->
                  Buffer.add_char buf '\n';
                  go ()
              | 't' ->
                  Buffer.add_char buf '\t';
                  go ()
              | 'r' ->
                  Buffer.add_char buf '\r';
                  go ()
              | 'b' ->
                  Buffer.add_char buf '\b';
                  go ()
              | 'f' ->
                  Buffer.add_char buf '\012';
                  go ()
              | 'u' ->
                  if !pos + 4 > n then fail "bad \\u escape";
                  let hex = String.sub text !pos 4 in
                  pos := !pos + 4;
                  (match int_of_string_opt ("0x" ^ hex) with
                  | None -> fail "bad \\u escape"
                  | Some code ->
                      (* Enough for the control characters we emit. *)
                      if code < 0x80 then Buffer.add_char buf (Char.chr code)
                      else Buffer.add_string buf (Printf.sprintf "\\u%s" hex));
                  go ()
              | _ -> fail "bad escape")
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
            Buffer.add_char buf c;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail ("bad number " ^ s))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Result.Error (Printf.sprintf "character %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
