(** Pluggable destinations for observability events.

    A sink is a pair of functions; the observability layer serialises
    access to [emit] (it is called under the handle's lock at span close
    and flush time), so sink implementations need no locking of their
    own.  The {!memory} sink locks anyway, since tests may read while a
    recording is in flight. *)

type event =
  | Span of { path : string list; ns : int64 }
      (** A span closed; [path] is the root-to-leaf name chain, [ns] the
          monotonic-clock elapsed time. *)
  | Counter of { name : string; value : int }
      (** Final merged total for one counter (emitted at close). *)
  | Gauge of { name : string; value : float }
      (** A gauge observation (emitted when set). *)

type t

val emit : t -> event -> unit
val flush : t -> unit

val silent : t
(** Drops everything.  Recording against the silent sink still feeds the
    in-memory aggregate (counters, span tree), just no streaming output. *)

val jsonl : (string -> unit) -> t
(** One compact JSON object per event, handed to the writer without a
    trailing newline.  Shapes:
    [{"type":"span","path":"build.train/build.sample","ns":123456}],
    [{"type":"counter","name":"sim.runs","value":104}],
    [{"type":"gauge","name":"pool.queue_depth","value":0}]. *)

val jsonl_channel : out_channel -> t
(** {!jsonl} writing newline-terminated lines to a channel; [flush]
    flushes the channel. *)

val human : Format.formatter -> t
(** Streaming human-readable lines ([[span] path … ms]). *)

val tee : t list -> t
(** Broadcast every event to each sink, in order. *)

val memory : unit -> t * (unit -> event list)
(** Collecting sink for tests: the second component returns the events
    emitted so far, oldest first. *)

val path_string : string list -> string
(** Span path rendered as ["a/b/c"]. *)
