type event =
  | Span of { path : string list; ns : int64 }
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }

type t = { emit : event -> unit; flush : unit -> unit }

let emit t event = t.emit event
let flush t = t.flush ()
let silent = { emit = ignore; flush = ignore }

let path_string path = String.concat "/" path

let json_of_event = function
  | Span { path; ns } ->
      Json.Obj
        [
          ("type", Json.String "span");
          ("path", Json.String (path_string path));
          ("ns", Json.Int (Int64.to_int ns));
        ]
  | Counter { name; value } ->
      Json.Obj
        [
          ("type", Json.String "counter");
          ("name", Json.String name);
          ("value", Json.Int value);
        ]
  | Gauge { name; value } ->
      Json.Obj
        [
          ("type", Json.String "gauge");
          ("name", Json.String name);
          ("value", Json.Float value);
        ]

let jsonl write =
  { emit = (fun e -> write (Json.to_string (json_of_event e))); flush = ignore }

let jsonl_channel oc =
  {
    emit =
      (fun e ->
        output_string oc (Json.to_string (json_of_event e));
        output_char oc '\n');
    flush = (fun () -> Stdlib.flush oc);
  }

let human ppf =
  {
    emit =
      (fun e ->
        match e with
        | Span { path; ns } ->
            Format.fprintf ppf "[span]    %-40s %10.3f ms@."
              (path_string path)
              (Int64.to_float ns /. 1e6)
        | Counter { name; value } ->
            Format.fprintf ppf "[counter] %-40s %10d@." name value
        | Gauge { name; value } ->
            Format.fprintf ppf "[gauge]   %-40s %10g@." name value);
    flush = (fun () -> Format.pp_print_flush ppf ());
  }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    flush = (fun () -> List.iter (fun s -> s.flush ()) sinks);
  }

let memory () =
  let events = ref [] in
  let lock = Mutex.create () in
  let sink =
    {
      emit =
        (fun e ->
          Mutex.lock lock;
          events := e :: !events;
          Mutex.unlock lock);
      flush = ignore;
    }
  in
  let contents () =
    Mutex.lock lock;
    let es = List.rev !events in
    Mutex.unlock lock;
    es
  in
  (sink, contents)
