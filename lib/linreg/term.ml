type t = Intercept | Main of int | Interaction of int * int

let value t x =
  match t with
  | Intercept -> 1.
  | Main k -> x.(k)
  | Interaction (j, k) -> x.(j) *. x.(k)

let main_effects_only ~dim =
  Intercept :: List.init dim (fun k -> Main k)

let interactions ~dim =
  List.concat
    (List.init dim (fun j ->
         List.filteri (fun k _ -> k > j) (List.init dim (fun k -> k))
         |> List.map (fun k -> Interaction (j, k))))

let full_set ~dim = main_effects_only ~dim @ interactions ~dim

let rank = function Intercept -> 0 | Main _ -> 1 | Interaction _ -> 2

let compare a b =
  match (a, b) with
  | Intercept, Intercept -> 0
  | Main j, Main k -> Int.compare j k
  | Interaction (a1, a2), Interaction (b1, b2) ->
      let c = Int.compare a1 b1 in
      if c <> 0 then c else Int.compare a2 b2
  | _ -> Int.compare (rank a) (rank b)

let to_string ?names t =
  let name k =
    match names with
    | Some ns when k < Array.length ns -> ns.(k)
    | Some _ | None -> "x" ^ string_of_int k
  in
  match t with
  | Intercept -> "1"
  | Main k -> name k
  | Interaction (j, k) -> name j ^ "*" ^ name k
