module Matrix = Archpred_linalg.Matrix
module Least_squares = Archpred_linalg.Least_squares
module Ils = Archpred_linalg.Incremental_ls

type t = {
  terms : Term.t list;
  coefficients : float array;
  sigma2 : float;
}

let terms t = t.terms
let coefficients t = t.coefficients
let sigma2 t = t.sigma2

let predict t x =
  List.fold_left2
    (fun acc term w -> acc +. (w *. Term.value term x))
    0. t.terms
    (Array.to_list t.coefficients)

let design_matrix terms points =
  let terms = Array.of_list terms in
  Matrix.init (Array.length points) (Array.length terms) (fun i j ->
      Term.value terms.(j) points.(i))

let fit ~terms ~points ~responses =
  if terms = [] then invalid_arg "Model.fit: no terms";
  if Array.length points <> Array.length responses then
    invalid_arg "Model.fit: points/responses mismatch";
  let h = design_matrix terms points in
  let f = Least_squares.fit h responses in
  {
    terms;
    coefficients = f.Least_squares.coefficients;
    sigma2 = f.Least_squares.sigma2;
  }

let aic ~p ~m ~sigma2 =
  if sigma2 <= 0. then neg_infinity
  else (float_of_int p *. log sigma2) +. (2. *. float_of_int m)

let stepwise ?(obs = Archpred_obs.null) ?(criterion = aic) ~points ~responses
    () =
  let p = Array.length points in
  if p = 0 then invalid_arg "Model.stepwise: empty sample";
  Archpred_obs.with_span obs "linreg.stepwise" @@ fun () ->
  let dim = Array.length points.(0) in
  let pool = Term.full_set ~dim in
  let all_terms = Array.of_list pool in
  let n_terms = Array.length all_terms in
  (* Every move the search can make selects columns of one fixed design
     matrix, so its Gram moments are computed once and each candidate set
     is scored by an incremental Cholesky — no per-candidate design
     rebuild, no per-candidate QR. *)
  let ils =
    Ils.create ~design:(design_matrix pool points) ~responses ()
  in
  let fac = Ils.factor ils in
  let score_factor m =
    if m >= p then infinity
    else
      match Ils.sigma2 fac with
      | None -> infinity
      | Some sigma2 -> criterion ~p ~m ~sigma2
  in
  let score_set cols =
    let m = List.length cols in
    if m >= p then infinity
    else if Ils.set fac cols then score_factor m
    else infinity
  in
  let start =
    (* Main effects if they fit; otherwise just the intercept.
       [Term.full_set] lists the intercept and main effects first, so the
       start set is the prefix of column indices. *)
    let mains = Term.main_effects_only ~dim in
    if List.length mains < p then List.init (List.length mains) Fun.id
    else [ 0 ]
  in
  (* [current] holds column indices in the same order the old QR search
     kept its term list: start order, additions appended at the end. *)
  let current = ref start in
  let best_score = ref (score_set !current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_move = ref None in
    let consider sc cols =
      match !best_move with
      | Some (sc', _) when sc' <= sc -> ()
      | Some _ | None -> best_move := Some (sc, cols)
    in
    (* Additions: the incumbent set is the shared factor base; each
       candidate term is one O(m^2) push on top, popped before the next. *)
    let m = List.length !current in
    if m + 1 < p && Ils.set fac !current then
      for j = 0 to n_terms - 1 do
        if not (List.mem j !current) then begin
          let sc =
            if Ils.push fac j then begin
              let sc = score_factor (m + 1) in
              Ils.pop fac;
              sc
            end
            else infinity
          in
          consider sc (!current @ [ j ])
        end
      done;
    (* Removals: refactor the remaining m-1 columns (still cheaper than one
       QR refit of the old implementation). *)
    List.iter
      (fun j ->
        if all_terms.(j) <> Term.Intercept then begin
          let cols = List.filter (fun u -> u <> j) !current in
          consider (score_set cols) cols
        end)
      !current;
    (match !best_move with
    | Some (sc, cols) when sc < !best_score -. 1e-12 ->
        best_score := sc;
        current := cols;
        improved := true
    | Some _ | None -> ())
  done;
  let terms_of cols = List.map (fun j -> all_terms.(j)) cols in
  (* Final coefficients come from the same QR path as [fit], and the start
     set is kept as a guard: the incremental criterion agrees with the QR
     one to rounding, but never let rounding return a worse model than the
     search started from. *)
  let final_fit cols =
    let model = fit ~terms:(terms_of cols) ~points ~responses in
    (criterion ~p ~m:(List.length cols) ~sigma2:model.sigma2, model)
  in
  let start_crit, start_model = final_fit start in
  Archpred_obs.count obs "ils.pushes" (Ils.pushes fac);
  Archpred_obs.count obs "ils.pops" (Ils.pops fac);
  if !current = start then start_model
  else
    let final_crit, final_model = final_fit !current in
    if final_crit <= start_crit then final_model else start_model

let pp ?names ppf t =
  List.iteri
    (fun i term ->
      if i > 0 then Format.fprintf ppf " + ";
      Format.fprintf ppf "%.4g*%s" t.coefficients.(i)
        (Term.to_string ?names term))
    t.terms
