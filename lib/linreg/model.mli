(** Linear regression models with stepwise AIC term selection.

    This is the comparison baseline of section 4.2: a linear model over
    main effects and two-factor interactions, fitted on the same
    space-filling samples as the RBF networks, then pruned by "variable
    selection based on the AIC criteria to eliminate insignificant
    factors".

    When the sample is smaller than the full term set (e.g. 30 points
    against the 46 terms of a 9-parameter space), the full fit is
    under-determined; [stepwise] therefore searches bidirectionally from
    the main-effects model, adding or dropping one term at a time while the
    criterion improves. *)

type t

val terms : t -> Term.t list
val coefficients : t -> float array
val sigma2 : t -> float
val predict : t -> float array -> float

val fit :
  terms:Term.t list -> points:float array array -> responses:float array -> t
(** Least-squares fit over an explicit term set. Raises
    [Invalid_argument] for an empty term list or mismatched data. *)

val stepwise :
  ?obs:Archpred_obs.t ->
  ?criterion:(p:int -> m:int -> sigma2:float -> float) ->
  points:float array array ->
  responses:float array ->
  unit ->
  t
(** Bidirectional stepwise selection.  Starts from intercept + main
    effects; candidate moves add one interaction / main effect not in the
    model or drop one non-intercept term; the move that most lowers the
    criterion is taken until no move improves it.  The default criterion
    is AIC, [p * log sigma2 + 2 m].  Records the ["linreg.stepwise"] span
    and ["ils.pushes"]/["ils.pops"] counters on [obs]. *)

val aic : p:int -> m:int -> sigma2:float -> float
val pp : ?names:string array -> Format.formatter -> t -> unit
