type node = {
  id : int;
  depth : int;
  lo : float array;
  hi : float array;
  indices : int array;
  mean : float;
  sse : float;
  mutable split : split option;
}

and split = {
  dim : int;
  threshold : float;
  order : int;
  sse_reduction : float;
  left : node;
  right : node;
}

type t = { root : node; p_min : int; mutable node_count : int }

let stats_of responses indices =
  let p = Array.length indices in
  let sum = ref 0. in
  Array.iter (fun i -> sum := !sum +. responses.(i)) indices;
  let mean = !sum /. float_of_int p in
  let sse = ref 0. in
  Array.iter
    (fun i ->
      let d = responses.(i) -. mean in
      sse := !sse +. (d *. d))
    indices;
  (mean, !sse)

(* Best split of a set of points: scan every dimension, sorting the node's
   points along it; candidate boundaries are midpoints between consecutive
   distinct coordinates.  Prefix sums give each bifurcation's SSE in O(1),
   so the whole search is O(dim * p log p). *)
let best_split ~dim ~points ~responses indices =
  let p = Array.length indices in
  let best = ref None in
  let order = Array.copy indices in
  for k = 0 to dim - 1 do
    Array.sort (fun a b -> Float.compare points.(a).(k) points.(b).(k)) order;
    (* prefix sums of y and y^2 in sorted order *)
    let psum = Array.make (p + 1) 0. in
    let psq = Array.make (p + 1) 0. in
    for j = 0 to p - 1 do
      let y = responses.(order.(j)) in
      psum.(j + 1) <- psum.(j) +. y;
      psq.(j + 1) <- psq.(j) +. (y *. y)
    done;
    for j = 0 to p - 2 do
      let xl = points.(order.(j)).(k) and xr = points.(order.(j + 1)).(k) in
      if xr > xl then begin
        let nl = float_of_int (j + 1) and nr = float_of_int (p - j - 1) in
        let sl = psum.(j + 1) and sr = psum.(p) -. psum.(j + 1) in
        let ql = psq.(j + 1) and qr = psq.(p) -. psq.(j + 1) in
        let sse_l = ql -. (sl *. sl /. nl) in
        let sse_r = qr -. (sr *. sr /. nr) in
        let e = sse_l +. sse_r in
        let better =
          match !best with None -> true | Some (e', _, _) -> e < e'
        in
        if better then best := Some (e, k, 0.5 *. (xl +. xr))
      end
    done
  done;
  !best

let build ?(obs = Archpred_obs.null) ?(p_min = 1) ~dim ~points ~responses () =
  if p_min < 1 then invalid_arg "Tree.build: p_min < 1";
  let n = Array.length points in
  if n = 0 then invalid_arg "Tree.build: empty sample";
  if Array.length responses <> n then
    invalid_arg "Tree.build: points/responses length mismatch";
  Array.iter
    (fun x ->
      if Array.length x <> dim then invalid_arg "Tree.build: arity mismatch")
    points;
  Archpred_obs.with_span obs "tree.build" @@ fun () ->
  let next_id = ref 0 in
  let make_node ~depth ~lo ~hi indices =
    let mean, sse = stats_of responses indices in
    let node =
      { id = !next_id; depth; lo; hi; indices; mean; sse; split = None }
    in
    incr next_id;
    node
  in
  let root =
    make_node ~depth:1 ~lo:(Array.make dim 0.) ~hi:(Array.make dim 1.)
      (Array.init n (fun i -> i))
  in
  (* Best-first expansion: always split the open leaf with the largest
     within-node SSE, so split order ranks significance. *)
  let open_leaves = ref [ root ] in
  let order = ref 0 in
  let splittable node = Array.length node.indices > p_min in
  let rec expand () =
    let candidates = List.filter splittable !open_leaves in
    match candidates with
    | [] -> ()
    | first :: rest ->
        let node =
          List.fold_left (fun a b -> if b.sse > a.sse then b else a) first rest
        in
        open_leaves := List.filter (fun l -> l != node) !open_leaves;
        (match best_split ~dim ~points ~responses node.indices with
        | None -> () (* all coordinates tied; the node stays a leaf *)
        | Some (_, k, b) ->
            let left_idx, right_idx =
              Array.to_list node.indices
              |> List.partition (fun i -> points.(i).(k) <= b)
            in
            let lo_l = Array.copy node.lo and hi_l = Array.copy node.hi in
            hi_l.(k) <- b;
            let lo_r = Array.copy node.lo and hi_r = Array.copy node.hi in
            lo_r.(k) <- b;
            let left =
              make_node ~depth:(node.depth + 1) ~lo:lo_l ~hi:hi_l
                (Array.of_list left_idx)
            in
            let right =
              make_node ~depth:(node.depth + 1) ~lo:lo_r ~hi:hi_r
                (Array.of_list right_idx)
            in
            incr order;
            node.split <-
              Some
                {
                  dim = k;
                  threshold = b;
                  order = !order;
                  sse_reduction = node.sse -. left.sse -. right.sse;
                  left;
                  right;
                };
            open_leaves := left :: right :: !open_leaves);
        expand ()
  in
  expand ();
  Archpred_obs.count obs "tree.nodes" !next_id;
  { root; p_min; node_count = !next_id }

let root t = t.root
let p_min t = t.p_min
let node_count t = t.node_count

let nodes t =
  let acc = ref [] in
  let rec walk n =
    acc := n :: !acc;
    match n.split with
    | None -> ()
    | Some s ->
        walk s.left;
        walk s.right
  in
  walk t.root;
  List.sort (fun a b -> Int.compare a.id b.id) !acc

let leaves t = List.filter (fun n -> n.split = None) (nodes t)

let depth t =
  List.fold_left (fun acc n -> max acc n.depth) 0 (nodes t)

let predict t x =
  let rec descend n =
    match n.split with
    | None -> n.mean
    | Some s -> if x.(s.dim) <= s.threshold then descend s.left else descend s.right
  in
  descend t.root

let splits t =
  nodes t
  |> List.filter_map (fun n -> n.split)
  |> List.sort (fun a b -> Int.compare a.order b.order)

let center n =
  Array.init (Array.length n.lo) (fun k -> 0.5 *. (n.lo.(k) +. n.hi.(k)))

let size n =
  Array.init (Array.length n.lo) (fun k -> n.hi.(k) -. n.lo.(k))

let region_disjoint_cover t =
  let ok = ref true in
  let rec walk n =
    match n.split with
    | None -> ()
    | Some s ->
        let merged =
          List.sort Int.compare
            (Array.to_list s.left.indices @ Array.to_list s.right.indices)
        in
        if merged <> List.sort Int.compare (Array.to_list n.indices) then
          ok := false;
        if Array.length s.left.indices = 0 || Array.length s.right.indices = 0
        then ok := false;
        walk s.left;
        walk s.right
  in
  walk t.root;
  !ok
