(** Regression trees over the unit hypercube (section 2.4 of the paper).

    The tree recursively bifurcates the sample along one input dimension
    [k] at a boundary [b], choosing [(k, b)] to minimise the residual
    square error

    {v E(k,b) = (1/p) * (sum_{i in S_L} (y_i - mean_L)^2
                        + sum_{i in S_R} (y_i - mean_R)^2) v}

    (eq. 7), and stops splitting a node once it holds at most [p_min]
    points.  Nodes are expanded best-first (largest within-node SSE first),
    so the creation order ranks splits by significance — "the parameters
    which cause the most output variation tend to be split earliest"; that
    ordering is what Table 5 and Figure 5 of the paper report.

    Every node carries the hyper-rectangle of design space it covers;
    node centers and sizes seed the RBF network (section 2.5). *)

type node = {
  id : int;  (** creation order; the root is 0 *)
  depth : int;  (** root depth is 1, as in Table 5 *)
  lo : float array;  (** lower corner of the node's hyper-rectangle *)
  hi : float array;  (** upper corner *)
  indices : int array;  (** sample points inside this region *)
  mean : float;  (** mean response of those points *)
  sse : float;  (** within-node sum of squared deviations *)
  mutable split : split option;
}

and split = {
  dim : int;  (** parameter index [k] of the bifurcation *)
  threshold : float;  (** boundary [b], in normalised coordinates *)
  order : int;  (** 1-based significance rank (creation order) *)
  sse_reduction : float;  (** SSE(parent) - SSE(left) - SSE(right) *)
  left : node;
  right : node;
}

type t

val build :
  ?obs:Archpred_obs.t ->
  ?p_min:int ->
  dim:int ->
  points:float array array ->
  responses:float array ->
  unit ->
  t
(** [build ~dim ~points ~responses ()] grows a tree on sample points in
    [\[0,1\]^dim].  [p_min] (default 1) is the method parameter of section
    2.4: leaves with at most [p_min] points are not split.  Records the
    ["tree.build"] span and ["tree.nodes"] counter on [obs].  Raises
    [Invalid_argument] on empty input, mismatched lengths, or points of the
    wrong arity. *)

val root : t -> node
val p_min : t -> int
val node_count : t -> int

val nodes : t -> node list
(** All nodes in creation (significance) order: the root first. *)

val leaves : t -> node list
val depth : t -> int

val predict : t -> float array -> float
(** Mean response of the leaf whose region contains the point (points on a
    boundary go left, matching [x_k <= b]). *)

val splits : t -> split list
(** All splits in significance order — the data behind Table 5 and
    Figure 5. *)

val center : node -> float array
(** Center of the node's hyper-rectangle. *)

val size : node -> float array
(** Edge lengths of the node's hyper-rectangle. *)

val region_disjoint_cover : t -> bool
(** Invariant check used by tests: at every internal node the children's
    index sets partition the parent's. *)
