module Trace = Archpred_sim.Trace
module Opcode = Archpred_sim.Opcode
module Tbl = Archpred_stats.Tbl

(* Fit the zipf exponent from the observed access share of the most popular
   tenth of lines, by bisection on the theoretical share. *)
let fit_zipf_s ~lines ~head_share =
  if lines < 10 then 1.0
  else begin
    let head = max 1 (lines / 10) in
    let share s =
      (* sum of r^-s over the head / over all, computed coarsely *)
      let total = ref 0. and top = ref 0. in
      for r = 1 to lines do
        let v = float_of_int r ** -.s in
        total := !total +. v;
        if r <= head then top := !top +. v
      done;
      !top /. !total
    in
    let rec bisect lo hi iters =
      if iters = 0 then 0.5 *. (lo +. hi)
      else
        let mid = 0.5 *. (lo +. hi) in
        if share mid < head_share then bisect mid hi (iters - 1)
        else bisect lo mid (iters - 1)
    in
    Float.max 0. (Float.min 2. (bisect 0. 2. 20))
  end

type region_acc = {
  mutable accesses : int;
  mutable strided : int;
  mutable last_addr : int;
  lines : (int, int) Hashtbl.t;
}

let profile_of_trace ?(name = "extracted") trace =
  let n = Trace.length trace in
  if n = 0 then invalid_arg "Extractor.profile_of_trace: empty trace";
  let nf = float_of_int n in
  (* --- instruction mix --- *)
  let count = Array.make 11 0 in
  for i = 0 to n - 1 do
    count.(Opcode.to_int (Trace.op trace i)) <- count.(Opcode.to_int (Trace.op trace i)) + 1
  done;
  let frac o = float_of_int count.(Opcode.to_int o) /. nf in
  (* --- dependency geometry --- *)
  let dep_sum = ref 0 and dep_n = ref 0 and dep2_n = ref 0 in
  let chase = ref 0 and loads = ref 0 in
  for i = 0 to n - 1 do
    let d1 = Trace.dep1 trace i in
    if d1 > 0 then begin
      dep_sum := !dep_sum + d1;
      incr dep_n
    end;
    if Trace.dep2 trace i > 0 then incr dep2_n;
    if Trace.op trace i = Opcode.Load then begin
      incr loads;
      if d1 > 0 && Trace.op trace (i - d1) = Opcode.Load then incr chase
    end
  done;
  let mean_dep =
    if !dep_n = 0 then 2. else float_of_int !dep_sum /. float_of_int !dep_n
  in
  (* geometric with support 1,2,...: mean = 1 + (1-p)/p  =>  p = 1/mean *)
  let dep_p = Float.max 0.05 (Float.min 1. (1. /. Float.max 1. mean_dep)) in
  (* --- code footprint --- *)
  let code_lines = Hashtbl.create 1024 in
  for i = 0 to n - 1 do
    let line = Trace.pc trace i lsr 6 in
    Hashtbl.replace code_lines line
      (1 + Option.value ~default:0 (Hashtbl.find_opt code_lines line))
  done;
  let code_bytes = max 256 (Hashtbl.length code_lines * 64) in
  let code_zipf_s =
    let lines = Hashtbl.length code_lines in
    let counts =
      Tbl.fold_sorted ~cmp:Int.compare (fun _ v acc -> v :: acc) code_lines []
      |> List.sort (fun a b -> Int.compare b a)
    in
    let head = max 1 (lines / 10) in
    let head_hits =
      List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < head) counts)
    in
    fit_zipf_s ~lines ~head_share:(float_of_int head_hits /. float_of_int n)
  in
  (* --- data regions: cluster by 16MB address windows --- *)
  let clusters : (int, region_acc) Hashtbl.t = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    if Opcode.is_memory (Trace.op trace i) then begin
      let addr = Trace.addr trace i in
      let key = addr lsr 24 in
      let c =
        match Hashtbl.find_opt clusters key with
        | Some c -> c
        | None ->
            let c =
              { accesses = 0; strided = 0; last_addr = min_int; lines = Hashtbl.create 64 }
            in
            Hashtbl.add clusters key c;
            c
      in
      c.accesses <- c.accesses + 1;
      if addr = c.last_addr + 8 then c.strided <- c.strided + 1;
      c.last_addr <- addr;
      let line = addr lsr 6 in
      Hashtbl.replace c.lines line
        (1 + Option.value ~default:0 (Hashtbl.find_opt c.lines line))
    end
  done;
  let total_mem =
    Tbl.fold_sorted ~cmp:Int.compare (fun _ c acc -> acc + c.accesses) clusters 0
  in
  let region_of c : Profile.region =
    let lines = Hashtbl.length c.lines in
    let bytes = max 4096 (lines * 64) in
    (* head concentration: share of accesses on the most popular tenth *)
    let counts =
      Tbl.fold_sorted ~cmp:Int.compare (fun _ v acc -> v :: acc) c.lines []
      |> List.sort (fun a b -> Int.compare b a)
    in
    let head = max 1 (lines / 10) in
    let head_hits =
      List.fold_left ( + ) 0 (List.filteri (fun i _ -> i < head) counts)
    in
    let head_share = float_of_int head_hits /. float_of_int (max 1 c.accesses) in
    {
      Profile.bytes;
      weight = float_of_int c.accesses /. float_of_int (max 1 total_mem);
      stride_frac =
        Float.min 1. (float_of_int c.strided /. float_of_int (max 1 c.accesses));
      zipf_s = fit_zipf_s ~lines ~head_share;
    }
  in
  (* at most three regions, ordered by footprint (hot = smallest) *)
  let regions =
    (* sorted by 16MB-window key: region order (and the float weight sums
       downstream) must not depend on hash-bucket order *)
    Tbl.fold_sorted ~cmp:Int.compare (fun _ c acc -> c :: acc) clusters []
    |> List.filter (fun c -> c.accesses > 0)
    |> List.map region_of
    |> List.stable_sort (fun (a : Profile.region) b -> Int.compare a.bytes b.bytes)
  in
  let default_region w : Profile.region =
    { bytes = 4096; weight = w; stride_frac = 0.1; zipf_s = 1. }
  in
  let hot, warm, cold =
    match regions with
    | [] -> (default_region 1., default_region 0., default_region 0.)
    | [ a ] -> (a, default_region 0., default_region 0.)
    | [ a; b ] -> (a, b, default_region 0.)
    | a :: rest ->
        (* fold extra clusters into the largest one, summing weights *)
        let rec last_and_middle acc = function
          | [ last ] -> (List.rev acc, last)
          | x :: rest -> last_and_middle (x :: acc) rest
          | [] -> assert false
        in
        let middle, last = last_and_middle [] rest in
        let mid_weight =
          List.fold_left (fun s (r : Profile.region) -> s +. r.weight) 0. middle
        in
        let warm =
          match middle with
          | m :: _ -> { m with Profile.weight = mid_weight }
          | [] -> default_region 0.
        in
        (a, warm, last)
  in
  (* renormalise weights to sum exactly to 1 *)
  let wsum = hot.Profile.weight +. warm.Profile.weight +. cold.Profile.weight in
  let scale (r : Profile.region) =
    { r with Profile.weight = (if wsum > 0. then r.weight /. wsum else 1. /. 3.) }
  in
  let hot = scale hot and warm = scale warm and cold = scale cold in
  (* --- branch behaviour --- *)
  let static : (int, int * int * int * int) Hashtbl.t = Hashtbl.create 256 in
  (* pc -> (taken, total, backward_taken, taken_runs) *)
  let run_len : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let run_sum = ref 0 and run_count = ref 0 in
  for i = 0 to n - 1 do
    if Trace.op trace i = Opcode.Branch then begin
      let pc = Trace.pc trace i in
      let taken = Trace.taken trace i in
      let backward = Trace.target trace i <= pc in
      let t, tot, bw, runs =
        Option.value ~default:(0, 0, 0, 0) (Hashtbl.find_opt static pc)
      in
      let cur = Option.value ~default:0 (Hashtbl.find_opt run_len pc) in
      if taken then Hashtbl.replace run_len pc (cur + 1)
      else begin
        if cur > 0 then begin
          run_sum := !run_sum + cur;
          incr run_count
        end;
        Hashtbl.replace run_len pc 0
      end;
      Hashtbl.replace static pc
        ( (if taken then t + 1 else t),
          tot + 1,
          (if taken && backward then bw + 1 else bw),
          runs )
    end
  done;
  let loop_n = ref 0 and biased_n = ref 0 and hard_n = ref 0 in
  let biased_sum = ref 0. in
  (* sorted by branch pc: [biased_sum] accumulates floats, so iteration
     order is part of the result's bit pattern *)
  Tbl.iter_sorted ~cmp:Int.compare
    (fun _ (t, tot, bw, _) ->
      if tot >= 4 then begin
        let rate = float_of_int t /. float_of_int tot in
        let mostly_backward = bw * 2 > t in
        if rate >= 0.6 && mostly_backward then incr loop_n
        else if rate >= 0.75 || rate <= 0.25 then begin
          incr biased_n;
          biased_sum := !biased_sum +. Float.max rate (1. -. rate)
        end
        else incr hard_n
      end)
    static;
  let classified = max 1 (!loop_n + !biased_n + !hard_n) in
  let profile : Profile.t =
    {
      name;
      description = "profile extracted from a trace (statistical simulation)";
      load_frac = frac Opcode.Load;
      store_frac = frac Opcode.Store;
      branch_frac = frac Opcode.Branch;
      jump_frac = frac Opcode.Jump;
      imul_frac = frac Opcode.Imul;
      idiv_frac = frac Opcode.Idiv;
      fadd_frac = frac Opcode.Fadd;
      fmul_frac = frac Opcode.Fmul;
      fdiv_frac = frac Opcode.Fdiv;
      dep_p;
      dep2_prob = float_of_int !dep2_n /. nf;
      code_bytes;
      code_zipf_s;
      hot;
      warm;
      cold;
      chase_frac =
        Float.min 1. (float_of_int !chase /. float_of_int (max 1 !loads));
      loop_frac = float_of_int !loop_n /. float_of_int classified;
      biased_frac = float_of_int !biased_n /. float_of_int classified;
      loop_mean_iters =
        (if !run_count = 0 then 8 else max 1 (!run_sum / !run_count));
      biased_p =
        (if !biased_n = 0 then 0.9
         else Float.min 0.99 (!biased_sum /. float_of_int !biased_n));
    }
  in
  match Profile.validate profile with
  | Ok () -> profile
  | Error msg -> invalid_arg ("Extractor.profile_of_trace: " ^ msg)
