(** Deterministic fault injection for crash-safety testing.

    Production code marks the places where it can fail — a write about to
    hit the disk, a rename about to commit a model, a simulation task
    about to run — with {!point}.  A disarmed site costs one atomic load
    and nothing else, so the markers stay in release builds.  Tests arm a
    site to raise {!Injected} on an exact hit count, which makes every
    crash in the matrix reproducible: the k-th simulation task, the byte
    before the rename, the first journal append.

    Sites are addressed by name.  The conventional sites wired into the
    library are:

    - ["sim.task"] — entry of every simulation task ({!Archpred_core.Build})
    - ["pool.task"] — entry of every attempt in
      {!Archpred_stats.Parallel.map_fallible}
    - ["io.write"] — before the body of an atomic file write
      ({!Archpred_core.Persist.save})
    - ["persist.rename"] — after the temp file is durable, before the
      rename commits it
    - ["checkpoint.append"] — before a journal record is written
    - ["checkpoint.sync"] — before a journal batch fsync
    - ["serve.accept"] — before each accept in the prediction daemon
      ({!Archpred_serve_net.Daemon})
    - ["serve.read"] — before each daemon socket read
    - ["serve.write"] — before each daemon socket write
    - ["serve.reload"] — at hot-reload entry, before the model file is
      opened

    Counting and arming are guarded by a mutex, so sites may be hit from
    worker domains; hit ordering across domains is scheduler-dependent,
    but the total count and the decision "n-th hit fires" are not. *)

exception Injected of string
(** Raised by {!point} at an armed site; carries the site name. *)

val point : string -> unit
(** [point site] marks an injection site.  No-op (one atomic load) unless
    the harness is active; when [site] is armed and this hit reaches the
    armed count, raises [Injected site]. *)

val arm : site:string -> after:int -> ?sticky:bool -> unit -> unit
(** [arm ~site ~after ()] makes the [after]-th hit of [site] (1-based,
    counted from the last {!reset}) raise {!Injected} — a transient
    fault: earlier and later hits pass.  With [~sticky:true] every hit
    from the [after]-th on raises — a permanent fault.  Re-arming a site
    replaces its previous arm; [after < 1] is invalid. *)

val disarm : string -> unit
(** Remove the arm on one site.  Hit counting continues. *)

val reset : unit -> unit
(** Disarm every site, zero every hit counter, stop recording. *)

val record : bool -> unit
(** [record true] counts hits at every site even with no arms set, so a
    dry run can measure the matrix (how many ["sim.task"] hits does this
    training run make?).  [record false] stops counting; counts are kept
    until {!reset}. *)

val hits : string -> int
(** Hits of one site since the last {!reset} (0 if never hit).  Only
    counted while recording or while any site is armed. *)

val active : unit -> bool
(** Whether {!point} is currently doing any work (recording on, or at
    least one site armed). *)
