exception Injected of string

type site = { mutable hits : int; mutable armed : (int * bool) option }

let lock = Mutex.create ()
let table : (string, site) Hashtbl.t = Hashtbl.create 16
let recording = ref false

(* The fast path of [point] must not take the mutex: disarmed sites sit
   on hot loops (every simulation task, every journal append).  A single
   atomic flag flips on when the harness has any work to do. *)
let on = Atomic.make false

let refresh_on () =
  Atomic.set on
    (* archpred-lint: allow hashtbl-order -- commutative boolean OR over sites *)
    (!recording || Hashtbl.fold (fun _ s acc -> acc || s.armed <> None) table false)

let site_of name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
      let s = { hits = 0; armed = None } in
      Hashtbl.add table name s;
      s

let point name =
  if Atomic.get on then begin
    Mutex.lock lock;
    let fire =
      (* [on] may have flipped off between the load and the lock. *)
      (* archpred-lint: allow hashtbl-order -- commutative boolean OR over sites *)
      if not (!recording || Hashtbl.fold (fun _ s acc -> acc || s.armed <> None) table false)
      then false
      else begin
        let s = site_of name in
        s.hits <- s.hits + 1;
        match s.armed with
        | Some (k, sticky) -> if sticky then s.hits >= k else s.hits = k
        | None -> false
      end
    in
    Mutex.unlock lock;
    if fire then raise (Injected name)
  end

let arm ~site ~after ?(sticky = false) () =
  if after < 1 then invalid_arg "Fault.arm: after < 1";
  Mutex.lock lock;
  (site_of site).armed <- Some (after, sticky);
  refresh_on ();
  Mutex.unlock lock

let disarm name =
  Mutex.lock lock;
  (match Hashtbl.find_opt table name with
  | Some s -> s.armed <- None
  | None -> ());
  refresh_on ();
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  recording := false;
  refresh_on ();
  Mutex.unlock lock

let record flag =
  Mutex.lock lock;
  recording := flag;
  refresh_on ();
  Mutex.unlock lock

let hits name =
  Mutex.lock lock;
  let n = match Hashtbl.find_opt table name with Some s -> s.hits | None -> 0 in
  Mutex.unlock lock;
  n

let active () = Atomic.get on
